//! Shareable compiled-dialect artifacts: compile IRDL once, register
//! everywhere.
//!
//! The paper's central claim is that dialect definitions are *data* (§4):
//! compiled once from an IRDL specification and registered dynamically. A
//! [`DialectBundle`] makes that sharing real across threads. Compilation
//! produces artifacts — [`crate::verifier::CompiledOp`]s, flat
//! [`crate::program::ConstraintProgram`]s, format specs, native hooks —
//! that embed context-relative uniqued indices (`Symbol`s, `Type`s, verdict
//! key domains). They are therefore only meaningful against a context whose
//! interning tables contain the same entries at the same indices.
//!
//! The bundle exploits a structural property of [`Context`]: its uniquing
//! tables are append-only, so a *clone* of a context resolves every
//! existing index to the same value as the original. The bundle seals the
//! fully-compiled context as an immutable template; [`instantiate`]
//! (`DialectBundle::instantiate`) hands each caller a private clone. All
//! `Arc`'d hook objects are shared (never recompiled), every clone may
//! intern new symbols/types independently without affecting its siblings,
//! and the cloned verdict cache arrives warm — and is sound, because the
//! cached keys refer to interned values the clone resolves identically.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::Context;

use crate::artifact::{decode_bundle, encode_bundle, DialectRecipe};
use crate::compile::{compile_dialect_to_recipe, register_recipe};
use crate::native::NativeRegistry;
use crate::parser::parse_irdl;

/// An immutable, thread-shareable set of compiled dialects.
///
/// Internally this is a sealed template [`Context`] holding the compiled
/// registry. `Context` is `Sync` (its verdict cache is sharded and its
/// counters atomic), so the template is held bare and [`instantiate`]
/// (`DialectBundle::instantiate`) clones it without taking any lock.
pub struct DialectBundle {
    template: Context,
    names: Vec<String>,
    /// The serializable description of every compiled dialect, retained by
    /// [`DialectBundle::compile`] and [`DialectBundle::load`] so the
    /// bundle can be persisted with [`DialectBundle::save`]. Empty for
    /// hand-captured bundles.
    recipes: Vec<DialectRecipe>,
    /// Typed side-artifacts derived from the bundle (compiled pattern
    /// catalogs, matcher automata, analysis tables, ...), keyed by type.
    /// Like the dialect artifacts themselves: built once, `Arc`-shared by
    /// every consumer.
    artifacts: RwLock<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl std::fmt::Debug for DialectBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DialectBundle").field("names", &self.names).finish()
    }
}

impl DialectBundle {
    /// Compiles every dialect in `sources` (each a `(label, irdl-source)`
    /// pair) into one bundle, using the given native hooks.
    ///
    /// Compilation happens exactly once here, regardless of how many
    /// contexts are later instantiated from the bundle.
    ///
    /// # Errors
    ///
    /// Returns the first parse or compile diagnostic, prefixed with the
    /// label of the offending source.
    pub fn compile(sources: &[(String, String)], natives: &NativeRegistry) -> Result<Self> {
        let mut ctx = Context::new();
        let mut names = Vec::new();
        let mut recipes = Vec::new();
        for (label, source) in sources {
            let file = parse_irdl(source)
                .map_err(|d| d.with_note(format!("while compiling `{label}`")))?;
            for dialect in &file.dialects {
                let (recipe, _) = compile_dialect_to_recipe(&mut ctx, dialect, natives)
                    .map_err(|d| d.with_note(format!("while compiling `{label}`")))?;
                names.push(dialect.name.clone());
                recipes.push(recipe);
            }
        }
        Ok(DialectBundle {
            template: ctx,
            names,
            recipes,
            artifacts: RwLock::new(HashMap::new()),
        })
    }

    /// Seals an already-compiled context as a bundle.
    ///
    /// Use this when compilation needs custom setup beyond
    /// [`DialectBundle::compile`] — e.g. extra hand-registered dialects or
    /// native syntaxes. The context should be treated as consumed: IR state
    /// (modules, ops) present in it will be cloned into every instance.
    pub fn capture(ctx: Context, names: Vec<String>) -> Self {
        DialectBundle {
            template: ctx,
            names,
            recipes: Vec::new(),
            artifacts: RwLock::new(HashMap::new()),
        }
    }

    /// Serializes the bundle's compiled dialects into a persistable
    /// artifact (`.irdlbc`, magic `IRDB`). [`DialectBundle::load`]
    /// rehydrates it without the IRDL frontend.
    ///
    /// Native hooks are closures and travel by *name*: the loader's
    /// [`NativeRegistry`] must register every hook the dialects use.
    /// Likewise, rewrite-pattern artifacts attached via
    /// [`DialectBundle::attach_artifact`] contain closures and are not
    /// persisted — only the dialects themselves.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for bundles created with
    /// [`DialectBundle::capture`]: hand-registered dialects have no
    /// serializable recipe.
    pub fn save(&self) -> Result<Vec<u8>> {
        if self.recipes.is_empty() && !self.names.is_empty() {
            return Err(Diagnostic::new(
                "this bundle was hand-captured, not compiled from IRDL; it has no \
                 serializable recipes (use DialectBundle::compile)",
            ));
        }
        Ok(encode_bundle(&self.template, &self.recipes))
    }

    /// [`DialectBundle::save`] straight to a file.
    ///
    /// # Errors
    ///
    /// Returns serialization diagnostics and I/O failures.
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        let bytes = self.save()?;
        std::fs::write(path, bytes)
            .map_err(|e| Diagnostic::new(format!("cannot write `{}`: {e}", path.display())))
    }

    /// Rehydrates a bundle from a persisted artifact: decodes the recipes
    /// and registers each on a fresh context through the same registration
    /// path compilation uses — no IRDL parsing, no constraint resolution,
    /// and no movement of [`crate::compile::dialect_compile_count`].
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on malformed input, or when `natives` lacks a
    /// hook the artifact names.
    pub fn load(bytes: &[u8], natives: &NativeRegistry) -> Result<Self> {
        let mut ctx = Context::new();
        let recipes = decode_bundle(&mut ctx, bytes, natives)?;
        let mut names = Vec::with_capacity(recipes.len());
        for recipe in &recipes {
            register_recipe(&mut ctx, recipe, natives)?;
            names.push(recipe.name.clone());
        }
        Ok(DialectBundle {
            template: ctx,
            names,
            recipes,
            artifacts: RwLock::new(HashMap::new()),
        })
    }

    /// [`DialectBundle::load`] straight from a file.
    ///
    /// # Errors
    ///
    /// Returns decode diagnostics and I/O failures.
    pub fn load_from(path: &std::path::Path, natives: &NativeRegistry) -> Result<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| Diagnostic::new(format!("cannot read `{}`: {e}", path.display())))?;
        Self::load(&bytes, natives)
    }

    /// The serializable recipes of the compiled dialects (empty for
    /// hand-captured bundles).
    pub fn recipes(&self) -> &[DialectRecipe] {
        &self.recipes
    }

    /// Creates a private [`Context`] carrying every compiled dialect.
    ///
    /// No recompilation happens: the registry (and all `Arc`'d verifier,
    /// syntax, and native-hook objects) is shared with the template, the
    /// interning tables are cloned so existing indices stay valid, and the
    /// verdict cache arrives warm. The instance is fully independent
    /// afterwards — interning, IR building, and cache growth are private.
    pub fn instantiate(&self) -> Context {
        self.template.clone()
    }

    /// The names of the dialects compiled into this bundle.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Attaches (or replaces) the artifact of type `T`.
    ///
    /// One artifact per type: wrap same-typed artifacts in distinct
    /// newtypes to store several.
    pub fn attach_artifact<T: Any + Send + Sync>(&self, artifact: Arc<T>) {
        self.artifacts
            .write()
            .expect("bundle artifact lock poisoned")
            .insert(TypeId::of::<T>(), artifact);
    }

    /// The attached artifact of type `T`, if any.
    pub fn artifact<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        let artifacts = self.artifacts.read().expect("bundle artifact lock poisoned");
        artifacts
            .get(&TypeId::of::<T>())
            .cloned()
            .map(|a| a.downcast::<T>().expect("artifact stored under its own TypeId"))
    }

    /// The attached artifact of type `T`, building and attaching it first
    /// if absent. `build` runs at most once per bundle under the write
    /// lock, so concurrent callers share one construction.
    pub fn artifact_or_insert<T: Any + Send + Sync>(
        &self,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(existing) = self.artifact::<T>() {
            return existing;
        }
        let mut artifacts = self.artifacts.write().expect("bundle artifact lock poisoned");
        // Double-check: another thread may have built it while we waited.
        if let Some(existing) = artifacts.get(&TypeId::of::<T>()) {
            return existing.clone().downcast::<T>().expect("artifact stored under its own TypeId");
        }
        let built = Arc::new(build());
        artifacts.insert(TypeId::of::<T>(), built.clone());
        built
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>
  Type complex {
    Parameters (elementType: !FloatType)
  }
  Operation mul {
    ConstraintVar (!T: !FloatType)
    Operands (lhs: !complex<!T>, rhs: !complex<!T>)
    Results (res: !complex<!T>)
  }
}
"#;

    #[test]
    fn bundle_compiles_once_and_instantiates_many() {
        let natives = NativeRegistry::with_std();
        let sources = vec![("cmath.irdl".to_string(), SPEC.to_string())];
        let before = crate::compile::dialect_compile_count();
        let bundle = DialectBundle::compile(&sources, &natives).unwrap();
        let after_compile = crate::compile::dialect_compile_count();
        assert_eq!(after_compile - before, 1);
        assert_eq!(bundle.names(), ["cmath"]);

        let mut a = bundle.instantiate();
        let mut b = bundle.instantiate();
        assert_eq!(crate::compile::dialect_compile_count(), after_compile);

        // Both instances resolve the compiled dialect and enforce its
        // constraints identically.
        for ctx in [&mut a, &mut b] {
            let f32 = ctx.f32_type();
            let ok = ctx.type_attr(f32);
            assert!(ctx.parametric_type("cmath", "complex", [ok]).is_ok());
            let i32 = ctx.i32_type();
            let bad = ctx.type_attr(i32);
            assert!(ctx.parametric_type("cmath", "complex", [bad]).is_err());
        }

        // Instances are independent: interning in one does not affect the
        // other.
        a.symbol("only-in-a");
        assert_eq!(b.symbol_lookup("only-in-a"), None);
    }

    #[test]
    fn bundle_saves_and_loads_without_recompiling() {
        let natives = NativeRegistry::with_std();
        let sources = vec![("cmath.irdl".to_string(), SPEC.to_string())];
        let bundle = DialectBundle::compile(&sources, &natives).unwrap();
        let bytes = bundle.save().unwrap();

        let before = crate::compile::dialect_compile_count();
        let loaded = DialectBundle::load(&bytes, &natives).unwrap();
        // Loading registers from recipes: no frontend compilation happens.
        assert_eq!(crate::compile::dialect_compile_count(), before);
        assert_eq!(loaded.names(), ["cmath"]);

        let mut ctx = loaded.instantiate();
        let f32 = ctx.f32_type();
        let ok = ctx.type_attr(f32);
        assert!(ctx.parametric_type("cmath", "complex", [ok]).is_ok());
        let i32 = ctx.i32_type();
        let bad = ctx.type_attr(i32);
        assert!(ctx.parametric_type("cmath", "complex", [bad]).is_err());

        // The rehydrated registry enforces op constraints end to end.
        let ir = "%a = \"test.def\"() : () -> !cmath.complex<f32>\n\
                  %m = \"cmath.mul\"(%a, %a) : (!cmath.complex<f32>, !cmath.complex<f32>) \
                  -> !cmath.complex<f32>";
        let module = irdl_ir::parse::parse_module(&mut ctx, ir).unwrap();
        assert!(irdl_ir::verify::verify_op(&ctx, module).is_ok());
    }

    #[test]
    fn captured_bundle_refuses_to_save() {
        let mut ctx = Context::new();
        ctx.symbol("x");
        let bundle = DialectBundle::capture(ctx, vec!["hand".to_string()]);
        let err = bundle.save().unwrap_err();
        assert!(err.message().contains("hand-captured"), "{err}");
    }

    #[test]
    fn corrupt_bundle_bytes_are_diagnostics() {
        let natives = NativeRegistry::with_std();
        let sources = vec![("cmath.irdl".to_string(), SPEC.to_string())];
        let bundle = DialectBundle::compile(&sources, &natives).unwrap();
        let bytes = bundle.save().unwrap();

        assert!(DialectBundle::load(b"IRDBx", &natives).is_err());
        assert!(DialectBundle::load(&bytes[..bytes.len() / 2], &natives).is_err());
        for index in 5..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0xff;
            // Either outcome is fine; panicking is not.
            let _ = DialectBundle::load(&corrupt, &natives);
        }
    }

    #[test]
    fn bundle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DialectBundle>();
    }

    #[test]
    fn artifact_store_builds_once_and_shares() {
        #[derive(Debug, PartialEq)]
        struct Table(Vec<u32>);
        struct Other(&'static str);

        let bundle = DialectBundle::capture(Context::new(), Vec::new());
        assert!(bundle.artifact::<Table>().is_none());

        let built = std::sync::atomic::AtomicUsize::new(0);
        let first = bundle.artifact_or_insert(|| {
            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Table(vec![1, 2, 3])
        });
        let second = bundle.artifact_or_insert(|| {
            built.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Table(Vec::new())
        });
        assert_eq!(built.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, Table(vec![1, 2, 3]));

        // Distinct types occupy distinct slots.
        bundle.attach_artifact(Arc::new(Other("aux")));
        assert_eq!(bundle.artifact::<Other>().unwrap().0, "aux");
        assert_eq!(*bundle.artifact::<Table>().unwrap(), Table(vec![1, 2, 3]));

        // Replacement swaps the artifact for later consumers.
        bundle.attach_artifact(Arc::new(Table(vec![9])));
        assert_eq!(*bundle.artifact::<Table>().unwrap(), Table(vec![9]));
    }
}
