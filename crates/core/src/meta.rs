//! The `irdl` meta-dialect: IRDL definitions represented *as IR*.
//!
//! The upstream MLIR implementation of IRDL (the one this paper's ideas
//! were merged into) represents dialect definitions as operations of an
//! `irdl` dialect — `irdl.dialect`, `irdl.operation`, `irdl.is`,
//! `irdl.any_of`, ... — so definitions travel through the same textual
//! format, verifier, and tooling as any other IR. This module reproduces
//! that design:
//!
//! - [`META_DIALECT`]: the `irdl` dialect, itself defined in IRDL
//!   (meta-circularly);
//! - [`to_meta_ir`]: lowers a parsed [`DialectDef`] into `irdl.*`
//!   operations;
//! - [`from_meta_ir`]: recovers a [`DialectDef`] from meta-IR, after which
//!   [`crate::compile`] registers it as usual.
//!
//! Constraint structure maps to SSA: each constraint is an operation
//! producing a `!irdl.constraint` value, combinators take their operands as
//! SSA uses, and a value used in more than one operand/result/attribute
//! position becomes a *constraint variable* — SSA sharing is exactly the
//! "same value at each use" semantics of `ConstraintVars` (§4.6).
//!
//! Raising is semantics-preserving rather than textually lossless: a
//! declared variable used at most once is inlined (its equality obligation
//! is vacuous), and leaf constraints travel as canonical expression text in
//! `irdl.is`.

use std::collections::HashMap;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::{Attribute, BlockRef, Context, OperationState, OpRef, Value};

use crate::ast::*;
use crate::printer::print_expr;

/// The `irdl` meta-dialect, defined in IRDL itself.
pub const META_DIALECT: &str = r#"
Dialect irdl {
  Summary "IRDL definitions represented as IR"

  Type constraint {
    Parameters ()
    Summary "The value produced by a constraint operation"
  }

  Operation dialect {
    Attributes (sym_name: string_attr)
    Region body { }
    Summary "Defines a dialect"
  }
  Operation type_def {
    Attributes (sym_name: string_attr)
    Region body { }
    Summary "Defines a type"
  }
  Operation attr_def {
    Attributes (sym_name: string_attr)
    Region body { }
    Summary "Defines an attribute"
  }
  Operation operation {
    Attributes (sym_name: string_attr)
    Region body { }
    Summary "Defines an operation"
  }

  Operation is {
    Attributes (expr: string_attr)
    Results (out: !constraint)
    Summary "A leaf constraint, in canonical IRDL expression syntax"
  }
  Operation any {
    Results (out: !constraint)
    Summary "Matches any type or attribute (AnyParam)"
  }
  Operation any_type {
    Results (out: !constraint)
    Summary "Matches any type"
  }
  Operation any_attr {
    Results (out: !constraint)
    Summary "Matches any attribute"
  }
  Operation any_of {
    Operands (constraints: Variadic<!constraint>)
    Results (out: !constraint)
    Summary "Matches when at least one operand constraint matches"
  }
  Operation all_of {
    Operands (constraints: Variadic<!constraint>)
    Results (out: !constraint)
    Summary "Matches when every operand constraint matches"
  }
  Operation not_op {
    Operands (constraint_in: !constraint)
    Results (out: !constraint)
    Summary "Matches when the operand constraint does not"
  }
  Operation parametric {
    Operands (params: Variadic<!constraint>)
    Attributes (base: string_attr, sigil: string_attr)
    Results (out: !constraint)
    Summary "Matches a parameterized reference with constrained parameters"
  }
  Operation array_of {
    Operands (element: !constraint)
    Results (out: !constraint)
    Summary "Matches arrays whose elements satisfy the operand"
  }
  Operation array_exact {
    Operands (elements: Variadic<!constraint>)
    Results (out: !constraint)
    Summary "Matches arrays with exactly these constrained elements"
  }

  Operation parameters {
    Operands (params: Variadic<!constraint>)
    Attributes (names: array_attr)
    Summary "Declares the parameters of a type or attribute"
  }
  Operation operands_def {
    Operands (constraints: Variadic<!constraint>)
    Attributes (names: array_attr, variadicity: array_attr)
    Summary "Declares the operands of an operation"
  }
  Operation results_def {
    Operands (constraints: Variadic<!constraint>)
    Attributes (names: array_attr, variadicity: array_attr)
    Summary "Declares the results of an operation"
  }
  Operation attributes_def {
    Operands (constraints: Variadic<!constraint>)
    Attributes (names: array_attr)
    Summary "Declares the attributes of an operation"
  }
  Operation verbatim {
    Attributes (text: string_attr)
    Summary "Carries aliases, enums, and native declarations as canonical source text"
  }
}
"#;

/// Registers the `irdl` meta-dialect into `ctx`.
///
/// # Errors
///
/// Propagates compile diagnostics (none are expected).
pub fn register_meta_dialect(ctx: &mut Context) -> Result<()> {
    crate::compile::register_dialects(ctx, META_DIALECT).map(|_| ())
}

/// Lowers a dialect definition into an `irdl.dialect` operation appended to
/// `block`.
///
/// Every feature survives the trip (formats, summaries, regions,
/// successors, native references): features without a structural meta-op
/// encoding are carried as attributes in canonical IRDL syntax.
///
/// # Errors
///
/// Propagates IR-building diagnostics (none are expected for ASTs produced
/// by the parser).
pub fn to_meta_ir(ctx: &mut Context, dialect: &DialectDef, block: BlockRef) -> Result<OpRef> {
    let (body, body_block) = ctx.create_region_with_entry([]);

    for item in &dialect.items {
        match item {
            Item::Type(def) | Item::Attribute(def) => {
                let is_type = matches!(item, Item::Type(_));
                let (region, entry) = ctx.create_region_with_entry([]);
                let mut lowerer = ConstraintLowerer::new(entry);
                let params: Vec<Value> = def
                    .parameters
                    .iter()
                    .map(|p| lowerer.lower(ctx, &p.constraint))
                    .collect::<Result<_>>()?;
                let names: Vec<Attribute> = def
                    .parameters
                    .iter()
                    .map(|p| ctx.string_attr(p.name.clone()))
                    .collect();
                let names_key = ctx.symbol("names");
                let names_attr = ctx.array_attr(names);
                let params_name = ctx.op_name("irdl", "parameters");
                let params_op = ctx.create_op(
                    OperationState::new(params_name)
                        .add_operands(params)
                        .add_attribute(names_key, names_attr),
                );
                ctx.append_op(entry, params_op);
                let op_name =
                    ctx.op_name("irdl", if is_type { "type_def" } else { "attr_def" });
                let mut state = OperationState::new(op_name).add_regions([region]);
                state = with_string_attr(ctx, state, "sym_name", &def.name);
                state = with_opt_string_attr(ctx, state, "summary", &def.summary);
                state = with_opt_string_attr(ctx, state, "native_verifier", &def.native_verifier);
                state = with_opt_string_attr(ctx, state, "format", &def.format);
                let op = ctx.create_op(state);
                ctx.append_op(body_block, op);
            }
            Item::Operation(def) => {
                let op = lower_operation(ctx, def)?;
                ctx.append_op(body_block, op);
            }
            // Aliases, enums, constraints, and native params have no
            // structural encoding; carry them as canonical source text so
            // nothing is lost.
            other => {
                let inner = crate::printer::print_item(other);
                let name = ctx.op_name("irdl", "verbatim");
                let mut state = OperationState::new(name);
                state = with_string_attr(ctx, state, "text", &inner);
                let op = ctx.create_op(state);
                ctx.append_op(body_block, op);
            }
        }
    }

    let name = ctx.op_name("irdl", "dialect");
    let mut state = OperationState::new(name).add_regions([body]);
    state = with_string_attr(ctx, state, "sym_name", &dialect.name);
    state = with_opt_string_attr(ctx, state, "summary", &dialect.summary);
    let op = ctx.create_op(state);
    ctx.append_op(block, op);
    Ok(op)
}

fn lower_operation(ctx: &mut Context, def: &OpDef) -> Result<OpRef> {
    let (region, entry) = ctx.create_region_with_entry([]);
    let mut lowerer = ConstraintLowerer::new(entry);
    // Constraint variables first: one shared SSA value per variable. The
    // defining op is tagged with a `var` attribute so raising recovers the
    // declaration even when the value ends up with zero or one use.
    for var in &def.constraint_vars {
        let value = lowerer.lower(ctx, &var.constraint)?;
        if let Some(def_op) = value.defining_op(ctx) {
            // A variable declared as an alias of an earlier variable shares
            // its defining op; keep the first marker in that case.
            if def_op.attr(ctx, "var").is_none() {
                let key = ctx.symbol("var");
                let name_attr = ctx.string_attr(var.name.clone());
                ctx.set_attr(def_op, key, name_attr);
            }
        }
        lowerer.vars.insert(var.name.clone(), value);
    }
    for (op_kind, args) in
        [("operands_def", &def.operands), ("results_def", &def.results)]
    {
        if args.is_empty() {
            continue;
        }
        let values: Vec<Value> = args
            .iter()
            .map(|a| lowerer.lower(ctx, &a.constraint))
            .collect::<Result<_>>()?;
        let names: Vec<Attribute> =
            args.iter().map(|a| ctx.string_attr(a.name.clone())).collect();
        let variadicity: Vec<Attribute> = args
            .iter()
            .map(|a| {
                let text = match a.variadicity {
                    Variadicity::Single => "single",
                    Variadicity::Variadic => "variadic",
                    Variadicity::Optional => "optional",
                };
                ctx.string_attr(text)
            })
            .collect();
        let names_key = ctx.symbol("names");
        let variadicity_key = ctx.symbol("variadicity");
        let names_attr = ctx.array_attr(names);
        let variadicity_attr = ctx.array_attr(variadicity);
        let name = ctx.op_name("irdl", op_kind);
        let op = ctx.create_op(
            OperationState::new(name)
                .add_operands(values)
                .add_attribute(names_key, names_attr)
                .add_attribute(variadicity_key, variadicity_attr),
        );
        ctx.append_op(entry, op);
    }
    if !def.attributes.is_empty() {
        let values: Vec<Value> = def
            .attributes
            .iter()
            .map(|a| lowerer.lower(ctx, &a.constraint))
            .collect::<Result<_>>()?;
        let names: Vec<Attribute> =
            def.attributes.iter().map(|a| ctx.string_attr(a.name.clone())).collect();
        let names_key = ctx.symbol("names");
        let names_attr = ctx.array_attr(names);
        let name = ctx.op_name("irdl", "attributes_def");
        let op = ctx.create_op(
            OperationState::new(name)
                .add_operands(values)
                .add_attribute(names_key, names_attr),
        );
        ctx.append_op(entry, op);
    }

    let name = ctx.op_name("irdl", "operation");
    let mut state = OperationState::new(name).add_regions([region]);
    state = with_string_attr(ctx, state, "sym_name", &def.name);
    state = with_opt_string_attr(ctx, state, "summary", &def.summary);
    state = with_opt_string_attr(ctx, state, "format", &def.format);
    state = with_opt_string_attr(ctx, state, "native_verifier", &def.native_verifier);
    // Constraint-variable names, in lowering order, so round-trips keep
    // the declared names.
    if !def.constraint_vars.is_empty() {
        let names: Vec<Attribute> = def
            .constraint_vars
            .iter()
            .map(|v| ctx.string_attr(v.name.clone()))
            .collect();
        let key = ctx.symbol("var_names");
        let attr = ctx.array_attr(names);
        state = state.add_attribute(key, attr);
    }
    if let Some(successors) = &def.successors {
        let names: Vec<Attribute> =
            successors.iter().map(|s| ctx.string_attr(s.clone())).collect();
        let key = ctx.symbol("successors");
        let attr = ctx.array_attr(names);
        state = state.add_attribute(key, attr);
    }
    if !def.regions.is_empty() {
        // Regions carry no constraints in the meta encoding beyond their
        // canonical text (they reference op names, not constraint values).
        let texts: Vec<Attribute> = def
            .regions
            .iter()
            .map(|r| {
                let line = crate::printer::print_region_def(r);
                ctx.string_attr(line)
            })
            .collect();
        let key = ctx.symbol("region_defs");
        let attr = ctx.array_attr(texts);
        state = state.add_attribute(key, attr);
    }
    Ok(ctx.create_op(state))
}

/// Lowers constraint expressions to SSA values in one entry block.
struct ConstraintLowerer {
    block: BlockRef,
    vars: HashMap<String, Value>,
}

impl ConstraintLowerer {
    fn new(block: BlockRef) -> Self {
        ConstraintLowerer { block, vars: HashMap::new() }
    }

    fn emit(
        &mut self,
        ctx: &mut Context,
        op: &str,
        operands: Vec<Value>,
        attrs: Vec<(&str, String)>,
    ) -> Result<Value> {
        let constraint_ty = ctx.parametric_type("irdl", "constraint", [])?;
        let name = ctx.op_name("irdl", op);
        let mut state =
            OperationState::new(name).add_operands(operands).add_result_types([constraint_ty]);
        for (key, value) in attrs {
            let key = ctx.symbol(key);
            let value = ctx.string_attr(value);
            state = state.add_attribute(key, value);
        }
        let op = ctx.create_op(state);
        ctx.append_op(self.block, op);
        Ok(op.result(ctx, 0))
    }

    fn lower(&mut self, ctx: &mut Context, expr: &ConstraintExpr) -> Result<Value> {
        match expr {
            ConstraintExpr::AnyParam => self.emit(ctx, "any", vec![], vec![]),
            ConstraintExpr::AnyType => self.emit(ctx, "any_type", vec![], vec![]),
            ConstraintExpr::AnyAttr => self.emit(ctx, "any_attr", vec![], vec![]),
            ConstraintExpr::AnyOf(items) => {
                let operands = items
                    .iter()
                    .map(|e| self.lower(ctx, e))
                    .collect::<Result<Vec<_>>>()?;
                self.emit(ctx, "any_of", operands, vec![])
            }
            ConstraintExpr::And(items) => {
                let operands = items
                    .iter()
                    .map(|e| self.lower(ctx, e))
                    .collect::<Result<Vec<_>>>()?;
                self.emit(ctx, "all_of", operands, vec![])
            }
            ConstraintExpr::Not(inner) => {
                let operand = self.lower(ctx, inner)?;
                self.emit(ctx, "not_op", vec![operand], vec![])
            }
            ConstraintExpr::ArrayOf(inner) => {
                let operand = self.lower(ctx, inner)?;
                self.emit(ctx, "array_of", vec![operand], vec![])
            }
            ConstraintExpr::ArrayExact(items) => {
                let operands = items
                    .iter()
                    .map(|e| self.lower(ctx, e))
                    .collect::<Result<Vec<_>>>()?;
                self.emit(ctx, "array_exact", operands, vec![])
            }
            ConstraintExpr::Ref { sigil, path, args, .. } => {
                // A bare single-segment reference may be a constraint
                // variable of the enclosing operation.
                if args.is_empty() && path.len() == 1 {
                    if let Some(value) = self.vars.get(&path[0]) {
                        return Ok(*value);
                    }
                }
                if args.is_empty() {
                    self.emit(ctx, "is", vec![], vec![("expr", print_expr(expr))])
                } else {
                    let operands = args
                        .iter()
                        .map(|e| self.lower(ctx, e))
                        .collect::<Result<Vec<_>>>()?;
                    let sigil_text = match sigil {
                        Sigil::Attr => "#",
                        Sigil::Type => "!",
                        Sigil::None => "",
                    };
                    self.emit(
                        ctx,
                        "parametric",
                        operands,
                        vec![("base", path.join(".")), ("sigil", sigil_text.to_string())],
                    )
                }
            }
            // All remaining leaves (int kinds, literals, strings, arrays)
            // encode via their canonical expression syntax.
            other => self.emit(ctx, "is", vec![], vec![("expr", print_expr(other))]),
        }
    }
}

fn with_string_attr(
    ctx: &mut Context,
    state: OperationState,
    key: &str,
    value: &str,
) -> OperationState {
    let key = ctx.symbol(key);
    let value = ctx.string_attr(value.to_string());
    state.add_attribute(key, value)
}

fn with_opt_string_attr(
    ctx: &mut Context,
    state: OperationState,
    key: &str,
    value: &Option<String>,
) -> OperationState {
    match value {
        Some(value) => with_string_attr(ctx, state, key, value),
        None => state,
    }
}

/// Recovers a [`DialectDef`] from an `irdl.dialect` operation.
///
/// # Errors
///
/// Returns a diagnostic when the meta-IR is malformed (wrong op names,
/// missing attributes, non-constraint operands).
pub fn from_meta_ir(ctx: &mut Context, dialect_op: OpRef) -> Result<DialectDef> {
    let get_string = |ctx: &Context, op: OpRef, key: &str| -> Option<String> {
        op.attr(ctx, key).and_then(|a| a.as_str(ctx).map(str::to_string))
    };
    let name = get_string(ctx, dialect_op, "sym_name")
        .ok_or_else(|| Diagnostic::new("irdl.dialect needs a sym_name"))?;
    let summary = get_string(ctx, dialect_op, "summary");
    let mut items = Vec::new();
    let body = dialect_op
        .region(ctx, 0)
        .entry_block(ctx)
        .ok_or_else(|| Diagnostic::new("irdl.dialect has an empty body"))?;
    for &item_op in body.ops(ctx).to_vec().iter() {
        let op_name = item_op.name(ctx).display(ctx);
        match op_name.as_str() {
            "irdl.type_def" | "irdl.attr_def" => {
                let is_type = op_name == "irdl.type_def";
                let def = raise_type_attr(ctx, item_op)?;
                items.push(if is_type { Item::Type(def) } else { Item::Attribute(def) });
            }
            "irdl.operation" => items.push(Item::Operation(raise_operation(ctx, item_op)?)),
            "irdl.verbatim" => {
                let text = get_string(ctx, item_op, "text")
                    .ok_or_else(|| Diagnostic::new("irdl.verbatim needs text"))?;
                let wrapped = format!("Dialect d {{\n{text}\n}}");
                let parsed = crate::parser::parse_irdl(&wrapped)
                    .map_err(|d| d.with_note("while raising irdl.verbatim"))?;
                items.extend(parsed.dialects.into_iter().flat_map(|d| d.items));
            }
            other => {
                return Err(Diagnostic::new(format!(
                    "unexpected operation `{other}` in irdl.dialect body"
                )))
            }
        }
    }
    Ok(DialectDef { name, summary, items, span: 0 })
}

fn string_array(ctx: &Context, op: OpRef, key: &str) -> Vec<String> {
    op.attr(ctx, key)
        .and_then(|a| a.as_array(ctx).map(|items| items.to_vec()))
        .map(|items| {
            items
                .iter()
                .filter_map(|a| a.as_str(ctx).map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

fn raise_type_attr(ctx: &mut Context, op: OpRef) -> Result<TypeAttrDef> {
    let name = op
        .attr(ctx, "sym_name")
        .and_then(|a| a.as_str(ctx).map(str::to_string))
        .ok_or_else(|| Diagnostic::new("definition needs a sym_name"))?;
    let entry = op
        .region(ctx, 0)
        .entry_block(ctx)
        .ok_or_else(|| Diagnostic::new("definition has an empty body"))?;
    let raiser = ConstraintRaiser::analyze(ctx, entry, &[]);
    let mut parameters = Vec::new();
    for &inner in entry.ops(ctx).to_vec().iter() {
        if inner.name(ctx).display(ctx) == "irdl.parameters" {
            let names = string_array(ctx, inner, "names");
            for (i, operand) in inner.operands(ctx).to_vec().iter().enumerate() {
                parameters.push(NamedConstraint {
                    name: names.get(i).cloned().unwrap_or_else(|| format!("p{i}")),
                    constraint: raiser.raise(ctx, *operand)?,
                    span: 0,
                });
            }
        }
    }
    let get = |ctx: &Context, key: &str| {
        op.attr(ctx, key).and_then(|a| a.as_str(ctx).map(str::to_string))
    };
    Ok(TypeAttrDef {
        name,
        parameters,
        summary: get(ctx, "summary"),
        native_verifier: get(ctx, "native_verifier"),
        format: get(ctx, "format"),
        span: 0,
    })
}

fn raise_operation(ctx: &mut Context, op: OpRef) -> Result<OpDef> {
    let get = |ctx: &Context, key: &str| {
        op.attr(ctx, key).and_then(|a| a.as_str(ctx).map(str::to_string))
    };
    let name = get(ctx, "sym_name").ok_or_else(|| Diagnostic::new("operation needs sym_name"))?;
    let entry = op
        .region(ctx, 0)
        .entry_block(ctx)
        .ok_or_else(|| Diagnostic::new("operation has an empty body"))?;
    let var_names = string_array(ctx, op, "var_names");
    let raiser = ConstraintRaiser::analyze(ctx, entry, &var_names);

    let mut def = OpDef { name, span: 0, ..Default::default() };
    def.summary = get(ctx, "summary");
    def.format = get(ctx, "format");
    def.native_verifier = get(ctx, "native_verifier");
    if op.attr(ctx, "successors").is_some() {
        def.successors = Some(string_array(ctx, op, "successors"));
    }
    // Declared variables become ConstraintVars entries.
    for (var_name, value) in &raiser.var_defs {
        def.constraint_vars.push(NamedConstraint {
            name: var_name.clone(),
            constraint: raiser.raise_definition(ctx, *value)?,
            span: 0,
        });
    }

    for &inner in entry.ops(ctx).to_vec().iter() {
        let inner_name = inner.name(ctx).display(ctx);
        match inner_name.as_str() {
            "irdl.operands_def" | "irdl.results_def" => {
                let names = string_array(ctx, inner, "names");
                let variadicity = string_array(ctx, inner, "variadicity");
                let mut args = Vec::new();
                for (i, operand) in inner.operands(ctx).to_vec().iter().enumerate() {
                    args.push(ArgDef {
                        name: names.get(i).cloned().unwrap_or_else(|| format!("v{i}")),
                        constraint: raiser.raise(ctx, *operand)?,
                        variadicity: match variadicity.get(i).map(String::as_str) {
                            Some("variadic") => Variadicity::Variadic,
                            Some("optional") => Variadicity::Optional,
                            _ => Variadicity::Single,
                        },
                        span: 0,
                    });
                }
                if inner_name == "irdl.operands_def" {
                    def.operands = args;
                } else {
                    def.results = args;
                }
            }
            "irdl.attributes_def" => {
                let names = string_array(ctx, inner, "names");
                for (i, operand) in inner.operands(ctx).to_vec().iter().enumerate() {
                    def.attributes.push(NamedConstraint {
                        name: names.get(i).cloned().unwrap_or_else(|| format!("a{i}")),
                        constraint: raiser.raise(ctx, *operand)?,
                        span: 0,
                    });
                }
            }
            _ => {} // constraint-producing ops are raised on demand
        }
    }

    // Region definitions were carried as canonical text.
    for text in string_array(ctx, op, "region_defs") {
        let wrapped = format!("Dialect d {{ Operation x {{ {text} }} }}");
        let parsed = crate::parser::parse_irdl(&wrapped)
            .map_err(|d| d.with_note("while raising a region definition"))?;
        for item in &parsed.dialects[0].items {
            if let Item::Operation(x) = item {
                def.regions.extend(x.regions.clone());
            }
        }
    }
    Ok(def)
}

/// Raises constraint SSA values back to expressions. Values used more than
/// once become constraint-variable references.
struct ConstraintRaiser {
    /// Variable name for each multiply-used value.
    var_defs: Vec<(String, Value)>,
}

impl ConstraintRaiser {
    fn analyze(ctx: &Context, entry: irdl_ir::BlockRef, _declared_names: &[String]) -> Self {
        // Declared variables are the ops carrying a `var` marker (written
        // by the lowering); multiply-used unmarked values also become
        // variables so hand-authored meta-IR keeps the SSA-sharing
        // semantics.
        let mut var_defs: Vec<(String, Value)> = Vec::new();
        let mut next = 0usize;
        for &op in entry.ops(ctx) {
            for i in 0..op.num_results(ctx) {
                let value = op.result(ctx, i);
                if let Some(name) =
                    op.attr(ctx, "var").and_then(|a| a.as_str(ctx).map(str::to_string))
                {
                    var_defs.push((name, value));
                } else if value.uses(ctx).nth(1).is_some() {
                    loop {
                        next += 1;
                        let candidate = format!("T{next}");
                        if !var_defs.iter().any(|(n, _)| *n == candidate) {
                            var_defs.push((candidate, value));
                            break;
                        }
                    }
                }
            }
        }
        ConstraintRaiser { var_defs }
    }

    /// Raises a use of `value`: shared values become variable references.
    fn raise(&self, ctx: &mut Context, value: Value) -> Result<ConstraintExpr> {
        if let Some((name, _)) = self.var_defs.iter().find(|(_, v)| *v == value) {
            // Variables canonically print with the type sigil (`!T`).
            return Ok(ConstraintExpr::Ref {
                sigil: Sigil::Type,
                path: vec![name.clone()],
                args: vec![],
                span: 0,
            });
        }
        self.raise_definition(ctx, value)
    }

    /// Raises the defining expression of `value` (never a variable ref).
    fn raise_definition(&self, ctx: &mut Context, value: Value) -> Result<ConstraintExpr> {
        let op = value
            .defining_op(ctx)
            .ok_or_else(|| Diagnostic::new("constraint operand is not an op result"))?;
        let name = op.name(ctx).display(ctx);
        let operands = op.operands(ctx).to_vec();
        let raise_all = |this: &Self, ctx: &mut Context| -> Result<Vec<ConstraintExpr>> {
            operands.iter().map(|v| this.raise(ctx, *v)).collect()
        };
        match name.as_str() {
            "irdl.any" => Ok(ConstraintExpr::AnyParam),
            "irdl.any_type" => Ok(ConstraintExpr::AnyType),
            "irdl.any_attr" => Ok(ConstraintExpr::AnyAttr),
            "irdl.any_of" => Ok(ConstraintExpr::AnyOf(raise_all(self, ctx)?)),
            "irdl.all_of" => Ok(ConstraintExpr::And(raise_all(self, ctx)?)),
            "irdl.not_op" => {
                let inner = self.raise(ctx, operands[0])?;
                Ok(ConstraintExpr::Not(Box::new(inner)))
            }
            "irdl.array_of" => {
                let inner = self.raise(ctx, operands[0])?;
                Ok(ConstraintExpr::ArrayOf(Box::new(inner)))
            }
            "irdl.array_exact" => Ok(ConstraintExpr::ArrayExact(raise_all(self, ctx)?)),
            "irdl.parametric" => {
                let base = op
                    .attr(ctx, "base")
                    .and_then(|a| a.as_str(ctx).map(str::to_string))
                    .ok_or_else(|| Diagnostic::new("irdl.parametric needs a base"))?;
                let sigil = match op.attr(ctx, "sigil").and_then(|a| {
                    a.as_str(ctx).map(str::to_string)
                }) {
                    Some(s) if s == "#" => Sigil::Attr,
                    Some(s) if s.is_empty() => Sigil::None,
                    _ => Sigil::Type,
                };
                Ok(ConstraintExpr::Ref {
                    sigil,
                    path: base.split('.').map(str::to_string).collect(),
                    args: raise_all(self, ctx)?,
                    span: 0,
                })
            }
            "irdl.is" => {
                let expr = op
                    .attr(ctx, "expr")
                    .and_then(|a| a.as_str(ctx).map(str::to_string))
                    .ok_or_else(|| Diagnostic::new("irdl.is needs an expr"))?;
                crate::parser::parse_constraint_expr_str(&expr)
                    .map_err(|d| d.with_note("while raising an irdl.is expression"))
            }
            other => Err(Diagnostic::new(format!(
                "`{other}` is not a constraint operation"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_dialect, strip_spans};

    const CMATH: &str = r#"
Dialect cmath {
  Summary "Complex arithmetic"
  Alias !FloatType = !AnyOf<!f32, !f64>
  Type complex {
    Parameters (elementType: !AnyOf<!f32, !f64>)
    Summary "A complex number"
  }
  Operation mul {
    ConstraintVar (!T: !complex<!AnyOf<!f32, !f64>>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }
  Operation log {
    Operands (c: !complex<!f32>, base: Optional<!f32>)
    Results (res: !complex<!f32>)
  }
}
"#;

    #[test]
    fn meta_dialect_registers() {
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let irdl_sym = ctx.symbol("irdl");
        let d = ctx.registry().dialect(irdl_sym).unwrap();
        assert!(d.num_ops() >= 15);
    }

    #[test]
    fn roundtrip_through_meta_ir() {
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let file = crate::parser::parse_irdl(CMATH).unwrap();

        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let meta_op = to_meta_ir(&mut ctx, &file.dialects[0], block).unwrap();

        // The meta-IR itself verifies against the irdl meta-dialect.
        irdl_ir::verify::verify_op(&ctx, module)
            .unwrap_or_else(|e| panic!("meta-IR invalid: {:?}", e[0]));

        // Raising recovers a structurally equal AST (modulo spans).
        let mut raised = from_meta_ir(&mut ctx, meta_op).unwrap();
        let mut original = file.dialects[0].clone();
        let mut original_file = SourceFile { dialects: vec![original.clone()] };
        strip_spans(&mut original_file);
        original = original_file.dialects.remove(0);
        let mut raised_file = SourceFile { dialects: vec![raised.clone()] };
        strip_spans(&mut raised_file);
        raised = raised_file.dialects.remove(0);
        assert_eq!(
            print_dialect(&raised),
            print_dialect(&original),
            "canonical text differs after the meta round-trip"
        );
    }

    #[test]
    fn meta_ir_prints_and_reparses() {
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let file = crate::parser::parse_irdl(CMATH).unwrap();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        to_meta_ir(&mut ctx, &file.dialects[0], block).unwrap();
        let text = irdl_ir::print::op_to_string(&ctx, module);
        assert!(text.contains("irdl.dialect"), "{text}");
        assert!(text.contains("irdl.any_of"), "{text}");
        let mut ctx2 = Context::new();
        register_meta_dialect(&mut ctx2).unwrap();
        let module2 = irdl_ir::parse::parse_module(&mut ctx2, &text)
            .unwrap_or_else(|e| panic!("{}", e.render(&text)));
        irdl_ir::verify::verify_op(&ctx2, module2).unwrap();
        assert_eq!(irdl_ir::print::op_to_string(&ctx2, module2), text);
    }

    #[test]
    fn single_use_constraint_var_survives_raising() {
        // Regression: vars used once were dropped by the uses>1 heuristic,
        // breaking formats that reference them ($T below).
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let src = r#"Dialect d {
            Type box_t { Parameters (e: !AnyType) }
            Operation wrap {
                ConstraintVar (!T: !AnyOf<!f32, !f64>)
                Operands (x: !box_t<!T>)
                Results (res: !T)
                Format "$x : $T"
            }
        }"#;
        let file = crate::parser::parse_irdl(src).unwrap();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let meta_op = to_meta_ir(&mut ctx, &file.dialects[0], block).unwrap();
        let raised = from_meta_ir(&mut ctx, meta_op).unwrap();
        let op = raised
            .items
            .iter()
            .find_map(|i| match i {
                Item::Operation(op) => Some(op),
                _ => None,
            })
            .unwrap();
        assert_eq!(op.constraint_vars.len(), 1, "{op:?}");
        assert_eq!(op.constraint_vars[0].name, "T");
        // The raised dialect must compile (the format references $T).
        let mut fresh = Context::new();
        crate::compile::compile_dialect(&mut fresh, &raised, &crate::NativeRegistry::new())
            .unwrap();
    }

    #[test]
    fn parametric_attr_sigil_survives_raising() {
        // Regression: parametric attribute constraints were raised with a
        // type sigil.
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let src = r#"Dialect demo {
            Attribute myattr { Parameters (v: string) }
            Operation o {
                Results (r: !AnyType)
                Attributes (a: #myattr<string>)
            }
        }"#;
        let file = crate::parser::parse_irdl(src).unwrap();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let meta_op = to_meta_ir(&mut ctx, &file.dialects[0], block).unwrap();
        let raised = from_meta_ir(&mut ctx, meta_op).unwrap();
        let text = crate::printer::print_dialect(&raised);
        assert!(text.contains("#myattr<string>"), "{text}");
    }

    #[test]
    fn raised_dialect_compiles_and_behaves() {
        let mut ctx = Context::new();
        register_meta_dialect(&mut ctx).unwrap();
        let file = crate::parser::parse_irdl(CMATH).unwrap();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let meta_op = to_meta_ir(&mut ctx, &file.dialects[0], block).unwrap();
        let raised = from_meta_ir(&mut ctx, meta_op).unwrap();

        // Compile the *raised* definition on a fresh context and check the
        // synthesized verifier behaves like the original.
        let mut fresh = Context::new();
        crate::compile::compile_dialect(&mut fresh, &raised, &crate::NativeRegistry::new())
            .unwrap();
        let f32 = fresh.f32_type();
        let ok = fresh.type_attr(f32);
        assert!(fresh.parametric_type("cmath", "complex", [ok]).is_ok());
        let i32 = fresh.i32_type();
        let bad = fresh.type_attr(i32);
        assert!(fresh.parametric_type("cmath", "complex", [bad]).is_err());
    }
}

