//! Name resolution: from [`ConstraintExpr`] syntax to compiled
//! [`Constraint`]s.
//!
//! Resolution implements the paper's namespace rules (§4.2): references are
//! resolved against, in order, alias formal parameters, the operation's
//! constraint variables, builtin names, the defining dialect's own items,
//! and finally other registered dialects via an explicit `dialect.name`
//! prefix (with `builtin` and `std` also searched implicitly).
//!
//! Because builtin names resolve before dialect-local items, a dialect
//! definition *named like a builtin* (`index`, `f32`, `AnyInteger`, ...)
//! is shadowed when referenced bare; qualify it with the dialect prefix
//! (`!mydialect.index`) to reach it.

use std::collections::HashMap;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::{Context, FloatKind, Signedness};

use crate::ast::*;
use crate::constraint::{Constraint, TypeClass};
use crate::native::NativeRegistry;

/// The name tables of one dialect under compilation, collected from its AST
/// before any constraint is resolved (so in-dialect forward references
/// work).
#[derive(Debug, Clone, Default)]
pub struct DialectScope {
    /// Dialect name.
    pub name: String,
    /// Type definitions: name → parameter count.
    pub types: HashMap<String, usize>,
    /// Attribute definitions: name → parameter count.
    pub attrs: HashMap<String, usize>,
    /// Alias definitions by name.
    pub aliases: HashMap<String, AliasDef>,
    /// Enum definitions: name → variants.
    pub enums: HashMap<String, Vec<String>>,
    /// Named constraint definitions (IRDL-Rust).
    pub constraints: HashMap<String, ConstraintDef>,
    /// Native parameter kinds (IRDL-Rust).
    pub params: HashMap<String, ParamDef>,
}

impl DialectScope {
    /// Collects the scope of `dialect`, rejecting duplicate names.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on duplicate definitions.
    pub fn from_ast(dialect: &DialectDef) -> Result<DialectScope> {
        let mut scope = DialectScope { name: dialect.name.clone(), ..Default::default() };
        let mut seen: HashMap<&str, Span> = HashMap::new();
        for item in &dialect.items {
            // Operations live in their own namespace; everything else shares
            // the type/attribute/alias/enum namespace.
            if !matches!(item, Item::Operation(_)) {
                if let Some(_prev) = seen.insert(item.name(), 0) {
                    return Err(Diagnostic::at(
                        dialect.span,
                        format!("duplicate definition of `{}` in dialect `{}`", item.name(), dialect.name),
                    ));
                }
            }
            match item {
                Item::Type(def) => {
                    scope.types.insert(def.name.clone(), def.parameters.len());
                }
                Item::Attribute(def) => {
                    scope.attrs.insert(def.name.clone(), def.parameters.len());
                }
                Item::Alias(def) => {
                    scope.aliases.insert(def.name.clone(), def.clone());
                }
                Item::Enum(def) => {
                    scope.enums.insert(def.name.clone(), def.variants.clone());
                }
                Item::Constraint(def) => {
                    scope.constraints.insert(def.name.clone(), def.clone());
                }
                Item::TypeOrAttrParam(def) => {
                    scope.params.insert(def.name.clone(), def.clone());
                }
                Item::Operation(_) => {}
            }
        }
        Ok(scope)
    }
}

/// Resolves constraint expressions within one dialect.
pub struct Resolver<'a> {
    /// The context (used for interning symbols/types and registry lookups).
    pub ctx: &'a mut Context,
    /// Native hooks referenced by `NativeConstraint` etc.
    pub natives: &'a NativeRegistry,
    /// The dialect scope.
    pub scope: &'a DialectScope,
    /// Constraint-variable names currently in scope (operation-local).
    pub vars: &'a [String],
    expanding: Vec<String>,
}

impl<'a> Resolver<'a> {
    /// Creates a resolver for `scope` with the given constraint variables.
    pub fn new(
        ctx: &'a mut Context,
        natives: &'a NativeRegistry,
        scope: &'a DialectScope,
        vars: &'a [String],
    ) -> Self {
        Resolver { ctx, natives, scope, vars, expanding: Vec::new() }
    }

    /// Resolves `expr` into a compiled constraint.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for unknown names, arity mismatches, alias
    /// cycles, and missing native hooks.
    pub fn resolve(&mut self, expr: &ConstraintExpr) -> Result<Constraint> {
        self.resolve_with(expr, &HashMap::new())
    }

    fn resolve_with(
        &mut self,
        expr: &ConstraintExpr,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Constraint> {
        match expr {
            ConstraintExpr::AnyType => Ok(Constraint::AnyType),
            ConstraintExpr::AnyAttr => Ok(Constraint::AnyAttr),
            ConstraintExpr::AnyParam => Ok(Constraint::Any),
            ConstraintExpr::IntKind(kind) => Ok(Constraint::Int(*kind)),
            ConstraintExpr::IntLiteral { value, kind } => {
                Ok(Constraint::IntLiteral { value: *value, kind: *kind })
            }
            ConstraintExpr::StringAny => Ok(Constraint::StringAny),
            ConstraintExpr::StringLiteral(s) => Ok(Constraint::StringLiteral(s.clone())),
            ConstraintExpr::ArrayAny => Ok(Constraint::ArrayAny),
            ConstraintExpr::ArrayOf(inner) => Ok(Constraint::ArrayOf(Box::new(
                self.resolve_with(inner, subst)?,
            ))),
            ConstraintExpr::ArrayExact(items) => Ok(Constraint::ArrayExact(
                items
                    .iter()
                    .map(|e| self.resolve_with(e, subst))
                    .collect::<Result<Vec<_>>>()?,
            )),
            ConstraintExpr::AnyOf(items) => Ok(Constraint::AnyOf(
                items
                    .iter()
                    .map(|e| self.resolve_with(e, subst))
                    .collect::<Result<Vec<_>>>()?,
            )),
            ConstraintExpr::And(items) => Ok(Constraint::And(
                items
                    .iter()
                    .map(|e| self.resolve_with(e, subst))
                    .collect::<Result<Vec<_>>>()?,
            )),
            ConstraintExpr::Not(inner) => {
                Ok(Constraint::Not(Box::new(self.resolve_with(inner, subst)?)))
            }
            ConstraintExpr::Ref { sigil, path, args, span } => {
                self.resolve_ref(*sigil, path, args, *span, subst)
            }
        }
    }

    fn resolve_ref(
        &mut self,
        _sigil: Sigil,
        path: &[String],
        args: &[ConstraintExpr],
        span: Span,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Constraint> {
        if path.len() == 2 {
            return self.resolve_qualified(&path[0], &path[1], args, span, subst);
        }
        let name = &path[0];

        // 1. Alias formal parameters (during alias expansion).
        if let Some(arg) = subst.get(name) {
            if !args.is_empty() {
                return Err(Diagnostic::at(span, "alias parameters take no arguments"));
            }
            let arg = arg.clone();
            // The argument was written in the caller's scope; substitution
            // environments do not nest.
            return self.resolve_with(&arg, &HashMap::new());
        }

        // 2. Operation constraint variables.
        if let Some(index) = self.vars.iter().position(|v| v == name) {
            if !args.is_empty() {
                return Err(Diagnostic::at(span, "constraint variables take no arguments"));
            }
            return Ok(Constraint::Var(index as u32));
        }

        // 3. Builtin names.
        if let Some(c) = self.resolve_builtin(name, args, span, subst)? {
            return Ok(c);
        }

        // 4. Dialect-local items.
        if let Some(c) = self.resolve_in_dialect(name, args, span, subst)? {
            return Ok(c);
        }

        // 5. Implicitly-searched registered dialects (`builtin`, `std`).
        for implicit in ["builtin", "std"] {
            if implicit != self.scope.name {
                if let Some(c) = self.resolve_registered(implicit, name, args, span, subst)? {
                    return Ok(c);
                }
            }
        }

        Err(Diagnostic::at(
            span,
            format!("unknown name `{name}` in dialect `{}`", self.scope.name),
        ))
    }

    /// Builtin type keywords, type classes, and builtin attr constraints.
    fn resolve_builtin(
        &mut self,
        name: &str,
        args: &[ConstraintExpr],
        span: Span,
        _subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Option<Constraint>> {
        let no_args = |span: usize, name: &str, args: &[ConstraintExpr]| {
            if args.is_empty() {
                Ok(())
            } else {
                Err(Diagnostic::at(span, format!("`{name}` takes no arguments")))
            }
        };
        // Integer types: i32 / si8 / ui64.
        for (prefix, signedness) in [
            ("i", Signedness::Signless),
            ("si", Signedness::Signed),
            ("ui", Signedness::Unsigned),
        ] {
            if let Some(rest) = name.strip_prefix(prefix) {
                if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
                    no_args(span, name, args)?;
                    let width: u32 = rest.parse().map_err(|_| {
                        Diagnostic::at(span, format!("invalid integer width in `{name}`"))
                    })?;
                    let ty = self.ctx.int_type_with_signedness(width, signedness);
                    return Ok(Some(Constraint::ExactType(ty)));
                }
            }
        }
        let float = |kind: FloatKind, this: &mut Self| {
            let ty = this.ctx.float_type(kind);
            Some(Constraint::ExactType(ty))
        };
        let result = match name {
            "f16" => float(FloatKind::F16, self),
            "bf16" => float(FloatKind::BF16, self),
            "f32" => float(FloatKind::F32, self),
            "f64" => float(FloatKind::F64, self),
            "index" => {
                let ty = self.ctx.index_type();
                Some(Constraint::ExactType(ty))
            }
            "AnyInteger" => Some(Constraint::Class(TypeClass::AnyInteger)),
            "AnyFloat" => Some(Constraint::Class(TypeClass::AnyFloat)),
            "AnyIndex" => Some(Constraint::Class(TypeClass::Index)),
            "AnyVector" => Some(Constraint::Class(TypeClass::AnyVector)),
            "AnyTensor" => Some(Constraint::Class(TypeClass::AnyTensor)),
            "AnyMemRef" => Some(Constraint::Class(TypeClass::AnyMemRef)),
            "AnyFunction" => Some(Constraint::Class(TypeClass::AnyFunction)),
            "f32_attr" => Some(Constraint::FloatAttr(Some(FloatKind::F32))),
            "f64_attr" => Some(Constraint::FloatAttr(Some(FloatKind::F64))),
            "float_attr" => Some(Constraint::FloatAttr(None)),
            "i8_attr" => Some(Constraint::Int(IntKind { width: 8, unsigned: false })),
            "i16_attr" => Some(Constraint::Int(IntKind { width: 16, unsigned: false })),
            "i32_attr" => Some(Constraint::Int(IntKind { width: 32, unsigned: false })),
            "i64_attr" => Some(Constraint::Int(IntKind { width: 64, unsigned: false })),
            "string_attr" => Some(Constraint::StringAny),
            "bool_attr" => Some(Constraint::BoolAttr),
            "unit_attr" => Some(Constraint::UnitAttr),
            "symbol_attr" => Some(Constraint::SymbolRefAttr),
            "location_attr" => Some(Constraint::LocationAttr),
            "typeid_attr" => Some(Constraint::TypeIdAttr),
            "array_attr" => Some(Constraint::ArrayAny),
            "type_attr" => Some(Constraint::AnyType),
            _ => None,
        };
        if result.is_some() {
            no_args(span, name, args)?;
        }
        Ok(result)
    }

    /// Items of the dialect under compilation.
    fn resolve_in_dialect(
        &mut self,
        name: &str,
        args: &[ConstraintExpr],
        span: Span,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Option<Constraint>> {
        // Aliases.
        if let Some(alias) = self.scope.aliases.get(name).cloned() {
            if self.expanding.iter().any(|n| n == name) {
                return Err(Diagnostic::at(
                    span,
                    format!("alias cycle detected while expanding `{name}`"),
                ));
            }
            if alias.params.len() != args.len() {
                return Err(Diagnostic::at(
                    span,
                    format!(
                        "alias `{name}` expects {} argument(s), got {}",
                        alias.params.len(),
                        args.len()
                    ),
                ));
            }
            // Resolve arguments in the *calling* substitution environment,
            // then re-wrap them so the alias body can reference them.
            let mut inner = HashMap::new();
            for (param, arg) in alias.params.iter().zip(args) {
                // Substitute eagerly through the caller's environment.
                let expanded = substitute(arg, subst);
                inner.insert(param.clone(), expanded);
            }
            self.expanding.push(name.to_string());
            let result = self.resolve_with(&alias.body, &inner);
            self.expanding.pop();
            return result.map(Some);
        }

        // Named (possibly native) constraint definitions.
        if let Some(def) = self.scope.constraints.get(name).cloned() {
            if !args.is_empty() {
                return Err(Diagnostic::at(span, "constraint definitions take no arguments"));
            }
            let base = self.resolve_with(&def.base, subst)?;
            return Ok(Some(match def.native {
                Some(native_name) => {
                    let pred = self.natives.constraint(&native_name).ok_or_else(|| {
                        Diagnostic::at(
                            span,
                            format!(
                                "native constraint `{native_name}` is not registered \
                                 (required by `{name}`)"
                            ),
                        )
                    })?;
                    Constraint::And(vec![base, Constraint::Native { name: native_name, pred }])
                }
                None => base,
            }));
        }

        // Native parameter kinds.
        if let Some(def) = self.scope.params.get(name) {
            if !args.is_empty() {
                return Err(Diagnostic::at(span, "parameter kinds take no arguments"));
            }
            let kind = self.ctx.symbol(&def.native_kind);
            return Ok(Some(Constraint::NativeParam { kind }));
        }

        // Enums.
        if self.scope.enums.contains_key(name) {
            if !args.is_empty() {
                return Err(Diagnostic::at(span, "enum constraints take no arguments"));
            }
            let dialect = self.ctx.symbol(&self.scope.name);
            let ename = self.ctx.symbol(name);
            return Ok(Some(Constraint::EnumAny { dialect, name: ename }));
        }

        // Types.
        if let Some(&param_count) = self.scope.types.get(name) {
            let dialect = self.ctx.symbol(&self.scope.name);
            let tname = self.ctx.symbol(name);
            return Ok(Some(self.parametric_constraint(
                true,
                dialect,
                tname,
                param_count,
                args,
                span,
                subst,
            )?));
        }

        // Attributes.
        if let Some(&param_count) = self.scope.attrs.get(name) {
            let dialect = self.ctx.symbol(&self.scope.name);
            let aname = self.ctx.symbol(name);
            return Ok(Some(self.parametric_constraint(
                false,
                dialect,
                aname,
                param_count,
                args,
                span,
                subst,
            )?));
        }

        Ok(None)
    }

    /// Qualified `dialect.name` references (or `enum.Variant`).
    fn resolve_qualified(
        &mut self,
        first: &str,
        second: &str,
        args: &[ConstraintExpr],
        span: Span,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Constraint> {
        // Local enum constructor: `signedness.Signed`.
        if let Some(variants) = self.scope.enums.get(first) {
            if !variants.iter().any(|v| v == second) {
                return Err(Diagnostic::at(
                    span,
                    format!("`{second}` is not a constructor of enum `{first}`"),
                ));
            }
            let dialect = self.ctx.symbol(&self.scope.name);
            let name = self.ctx.symbol(first);
            let variant = self.ctx.symbol(second);
            return Ok(Constraint::EnumVariant { dialect, name, variant });
        }

        // `builtin.f32`-style fully qualified builtins.
        if first == "builtin" {
            if let Some(c) = self.resolve_builtin(second, args, span, subst)? {
                return Ok(c);
            }
        }

        // Cross-dialect reference to a registered dialect.
        if let Some(c) = self.resolve_registered(first, second, args, span, subst)? {
            return Ok(c);
        }

        // Reference to the dialect under compilation with explicit prefix.
        if first == self.scope.name {
            if let Some(c) = self.resolve_in_dialect(second, args, span, subst)? {
                return Ok(c);
            }
        }

        Err(Diagnostic::at(span, format!("unknown reference `{first}.{second}`")))
    }

    /// Looks `name` up among the already-registered definitions of dialect
    /// `dialect_name` in the context registry.
    fn resolve_registered(
        &mut self,
        dialect_name: &str,
        name: &str,
        args: &[ConstraintExpr],
        span: Span,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Option<Constraint>> {
        let Some(dialect_sym) = self.ctx.symbol_lookup(dialect_name) else {
            return Ok(None);
        };
        let Some(name_sym) = self.ctx.symbol_lookup(name) else {
            return Ok(None);
        };
        if self.ctx.registry().dialect(dialect_sym).is_none() {
            return Ok(None);
        }
        if let Some(info) = self.ctx.registry().type_def(dialect_sym, name_sym) {
            let count = info.param_names.len();
            return Ok(Some(self.parametric_constraint(
                true,
                dialect_sym,
                name_sym,
                count,
                args,
                span,
                subst,
            )?));
        }
        if let Some(info) = self.ctx.registry().attr_def(dialect_sym, name_sym) {
            let count = info.param_names.len();
            return Ok(Some(self.parametric_constraint(
                false,
                dialect_sym,
                name_sym,
                count,
                args,
                span,
                subst,
            )?));
        }
        if self.ctx.registry().enum_def(dialect_sym, name_sym).is_some() {
            return Ok(Some(Constraint::EnumAny { dialect: dialect_sym, name: name_sym }));
        }
        Ok(None)
    }

    #[allow(clippy::too_many_arguments)]
    fn parametric_constraint(
        &mut self,
        is_type: bool,
        dialect: irdl_ir::Symbol,
        name: irdl_ir::Symbol,
        declared_params: usize,
        args: &[ConstraintExpr],
        span: Span,
        subst: &HashMap<String, ConstraintExpr>,
    ) -> Result<Constraint> {
        if args.is_empty() {
            // `!complex` — any parameters (paper §4.3).
            return Ok(if is_type {
                Constraint::BaseType { dialect, name }
            } else {
                Constraint::BaseAttr { dialect, name }
            });
        }
        if args.len() != declared_params {
            return Err(Diagnostic::at(
                span,
                format!(
                    "`{}` expects {declared_params} parameter(s), got {}",
                    self.ctx.symbol_str(name),
                    args.len()
                ),
            ));
        }
        let params = args
            .iter()
            .map(|a| self.resolve_with(a, subst))
            .collect::<Result<Vec<_>>>()?;
        Ok(if is_type {
            Constraint::ParametricType { dialect, name, params }
        } else {
            Constraint::ParametricAttr { dialect, name, params }
        })
    }
}

/// Substitutes alias formal parameters inside `expr` (purely syntactic).
fn substitute(
    expr: &ConstraintExpr,
    subst: &HashMap<String, ConstraintExpr>,
) -> ConstraintExpr {
    if subst.is_empty() {
        return expr.clone();
    }
    match expr {
        ConstraintExpr::Ref { sigil, path, args, span } => {
            if path.len() == 1 && args.is_empty() {
                if let Some(replacement) = subst.get(&path[0]) {
                    return replacement.clone();
                }
            }
            ConstraintExpr::Ref {
                sigil: *sigil,
                path: path.clone(),
                args: args.iter().map(|a| substitute(a, subst)).collect(),
                span: *span,
            }
        }
        ConstraintExpr::ArrayOf(inner) => {
            ConstraintExpr::ArrayOf(Box::new(substitute(inner, subst)))
        }
        ConstraintExpr::ArrayExact(items) => {
            ConstraintExpr::ArrayExact(items.iter().map(|e| substitute(e, subst)).collect())
        }
        ConstraintExpr::AnyOf(items) => {
            ConstraintExpr::AnyOf(items.iter().map(|e| substitute(e, subst)).collect())
        }
        ConstraintExpr::And(items) => {
            ConstraintExpr::And(items.iter().map(|e| substitute(e, subst)).collect())
        }
        ConstraintExpr::Not(inner) => ConstraintExpr::Not(Box::new(substitute(inner, subst))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_irdl;

    fn resolve_first_op_operand(src: &str) -> Result<Constraint> {
        let file = parse_irdl(src)?;
        let dialect = &file.dialects[0];
        let scope = DialectScope::from_ast(dialect)?;
        let mut ctx = Context::new();
        let natives = NativeRegistry::with_std();
        let op = dialect
            .items
            .iter()
            .find_map(|i| match i {
                Item::Operation(op) => Some(op),
                _ => None,
            })
            .expect("no operation in source");
        let vars: Vec<String> = op.constraint_vars.iter().map(|v| v.name.clone()).collect();
        let mut resolver = Resolver::new(&mut ctx, &natives, &scope, &vars);
        resolver.resolve(&op.operands[0].constraint)
    }

    #[test]
    fn resolve_builtin_exact_type() {
        let c = resolve_first_op_operand(
            "Dialect d { Operation o { Operands (x: !f32) } }",
        )
        .unwrap();
        assert!(matches!(c, Constraint::ExactType(_)));
    }

    #[test]
    fn resolve_local_type_base_and_parametric() {
        let base = resolve_first_op_operand(
            "Dialect d { Type t { Parameters (p: !AnyType) } Operation o { Operands (x: !t) } }",
        )
        .unwrap();
        assert!(matches!(base, Constraint::BaseType { .. }), "{base:?}");
        let parametric = resolve_first_op_operand(
            "Dialect d { Type t { Parameters (p: !AnyType) } Operation o { Operands (x: !t<!f32>) } }",
        )
        .unwrap();
        assert!(matches!(parametric, Constraint::ParametricType { .. }), "{parametric:?}");
    }

    #[test]
    fn resolve_constraint_var() {
        let c = resolve_first_op_operand(
            "Dialect d { Operation o { ConstraintVar (!T: !AnyType) Operands (x: !T) } }",
        )
        .unwrap();
        assert!(matches!(c, Constraint::Var(0)));
    }

    #[test]
    fn resolve_alias_expansion() {
        let c = resolve_first_op_operand(
            "Dialect d { Alias !FloatType = !AnyOf<!f32, !f64> Operation o { Operands (x: !FloatType) } }",
        )
        .unwrap();
        match c {
            Constraint::AnyOf(items) => assert_eq!(items.len(), 2),
            other => panic!("expected AnyOf, got {other:?}"),
        }
    }

    #[test]
    fn resolve_parametric_alias() {
        // Listing 4: ComplexOr<T>.
        let c = resolve_first_op_operand(
            r#"Dialect d {
                Type complex { Parameters (e: !AnyType) }
                Alias !ComplexOr<T> = AnyOf<!complex<!AnyType>, T>
                Operation o { Operands (x: !ComplexOr<!f32>) }
            }"#,
        )
        .unwrap();
        match c {
            Constraint::AnyOf(items) => {
                assert!(matches!(items[0], Constraint::ParametricType { .. }));
                assert!(matches!(items[1], Constraint::ExactType(_)));
            }
            other => panic!("expected AnyOf, got {other:?}"),
        }
    }

    #[test]
    fn alias_cycle_is_detected() {
        let err = resolve_first_op_operand(
            "Dialect d { Alias !A = !B Alias !B = !A Operation o { Operands (x: !A) } }",
        )
        .unwrap_err();
        assert!(err.message().contains("cycle"), "{err}");
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let err = resolve_first_op_operand(
            "Dialect d { Type t { Parameters (a: !AnyType, b: !AnyType) } Operation o { Operands (x: !t<!f32>) } }",
        )
        .unwrap_err();
        assert!(err.message().contains("expects 2 parameter"), "{err}");
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = resolve_first_op_operand(
            "Dialect d { Operation o { Operands (x: !mystery) } }",
        )
        .unwrap_err();
        assert!(err.message().contains("unknown name"), "{err}");
    }

    #[test]
    fn missing_native_hook_is_an_error() {
        let src = r#"Dialect d {
            Constraint C : uint32_t { NativeConstraint "no_such_hook" }
            Operation o { Operands (x: !AnyType) Attributes (a: C) }
        }"#;
        let file = parse_irdl(src).unwrap();
        let dialect = &file.dialects[0];
        let scope = DialectScope::from_ast(dialect).unwrap();
        let mut ctx = Context::new();
        let natives = NativeRegistry::new();
        let Item::Operation(op) = &dialect.items[1] else { panic!() };
        let mut resolver = Resolver::new(&mut ctx, &natives, &scope, &[]);
        let err = resolver.resolve(&op.attributes[0].constraint).unwrap_err();
        assert!(err.message().contains("no_such_hook"), "{err}");
    }

    #[test]
    fn enum_variant_resolution() {
        let src = r#"Dialect d {
            Enum signedness { Signless, Signed, Unsigned }
            Operation o { Operands (x: !AnyType) Attributes (s: signedness.Signed) }
        }"#;
        let file = parse_irdl(src).unwrap();
        let dialect = &file.dialects[0];
        let scope = DialectScope::from_ast(dialect).unwrap();
        let mut ctx = Context::new();
        let natives = NativeRegistry::new();
        let Item::Operation(op) = &dialect.items[1] else { panic!() };
        let mut resolver = Resolver::new(&mut ctx, &natives, &scope, &[]);
        let c = resolver.resolve(&op.attributes[0].constraint).unwrap();
        assert!(matches!(c, Constraint::EnumVariant { .. }), "{c:?}");
        // Bad variant.
        let bad = ConstraintExpr::Ref {
            sigil: Sigil::None,
            path: vec!["signedness".into(), "Sideways".into()],
            args: vec![],
            span: 0,
        };
        let err = resolver.resolve(&bad).unwrap_err();
        assert!(err.message().contains("not a constructor"), "{err}");
    }
}
