//! Pretty-printing IRDL ASTs back to canonical source text.
//!
//! The printer makes IRDL definitions *round-trippable*: `parse ∘ print`
//! is the identity on ASTs, which the property tests assert. It is also
//! the backend for tooling that rewrites or generates specifications (the
//! paper's §3: IRDL "makes it easy to introspect and generate IRs").

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole source file in canonical form.
pub fn print_source(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, dialect) in file.dialects.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_dialect(dialect));
    }
    out
}

/// Renders one dialect definition.
pub fn print_dialect(dialect: &DialectDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Dialect {} {{", dialect.name);
    if let Some(summary) = &dialect.summary {
        let _ = writeln!(out, "  Summary {}", quote(summary));
    }
    for item in &dialect.items {
        match item {
            Item::Type(def) => print_type_attr(&mut out, "Type", def),
            Item::Attribute(def) => print_type_attr(&mut out, "Attribute", def),
            Item::Alias(def) => {
                let params = if def.params.is_empty() {
                    String::new()
                } else {
                    format!("<{}>", def.params.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  Alias !{}{params} = {}",
                    def.name,
                    print_expr(&def.body)
                );
            }
            Item::Enum(def) => {
                let _ = writeln!(out, "  Enum {} {{ {} }}", def.name, def.variants.join(", "));
            }
            Item::Constraint(def) => {
                let _ = writeln!(out, "  Constraint {} : {} {{", def.name, print_expr(&def.base));
                if let Some(summary) = &def.summary {
                    let _ = writeln!(out, "    Summary {}", quote(summary));
                }
                if let Some(native) = &def.native {
                    let _ = writeln!(out, "    NativeConstraint {}", quote(native));
                }
                let _ = writeln!(out, "  }}");
            }
            Item::TypeOrAttrParam(def) => {
                let _ = writeln!(out, "  TypeOrAttrParam {} {{", def.name);
                if let Some(summary) = &def.summary {
                    let _ = writeln!(out, "    Summary {}", quote(summary));
                }
                let _ = writeln!(out, "    NativeType {}", quote(&def.native_kind));
                let _ = writeln!(out, "  }}");
            }
            Item::Operation(def) => print_op(&mut out, def),
        }
    }
    out.push_str("}\n");
    out
}

fn print_type_attr(out: &mut String, keyword: &str, def: &TypeAttrDef) {
    let _ = writeln!(out, "  {keyword} {} {{", def.name);
    let params: Vec<String> = def
        .parameters
        .iter()
        .map(|p| format!("{}: {}", p.name, print_expr(&p.constraint)))
        .collect();
    let _ = writeln!(out, "    Parameters ({})", params.join(", "));
    if let Some(summary) = &def.summary {
        let _ = writeln!(out, "    Summary {}", quote(summary));
    }
    if let Some(format) = &def.format {
        let _ = writeln!(out, "    Format {}", quote(format));
    }
    if let Some(native) = &def.native_verifier {
        let _ = writeln!(out, "    NativeVerifier {}", quote(native));
    }
    let _ = writeln!(out, "  }}");
}

fn print_op(out: &mut String, def: &OpDef) {
    let _ = writeln!(out, "  Operation {} {{", def.name);
    if !def.constraint_vars.is_empty() {
        let vars: Vec<String> = def
            .constraint_vars
            .iter()
            .map(|v| format!("!{}: {}", v.name, print_expr(&v.constraint)))
            .collect();
        let _ = writeln!(out, "    ConstraintVars ({})", vars.join(", "));
    }
    if !def.operands.is_empty() {
        let _ = writeln!(out, "    Operands ({})", print_args(&def.operands));
    }
    if !def.results.is_empty() {
        let _ = writeln!(out, "    Results ({})", print_args(&def.results));
    }
    if !def.attributes.is_empty() {
        let attrs: Vec<String> = def
            .attributes
            .iter()
            .map(|a| format!("{}: {}", a.name, print_expr(&a.constraint)))
            .collect();
        let _ = writeln!(out, "    Attributes ({})", attrs.join(", "));
    }
    for region in &def.regions {
        let _ = writeln!(out, "    {}", print_region_def(region));
    }
    if let Some(successors) = &def.successors {
        let _ = writeln!(out, "    Successors ({})", successors.join(", "));
    }
    if let Some(format) = &def.format {
        let _ = writeln!(out, "    Format {}", quote(format));
    }
    if let Some(summary) = &def.summary {
        let _ = writeln!(out, "    Summary {}", quote(summary));
    }
    if let Some(native) = &def.native_verifier {
        let _ = writeln!(out, "    NativeVerifier {}", quote(native));
    }
    let _ = writeln!(out, "  }}");
}

/// Renders a single `Region ...` clause (as it appears inside an
/// operation body) in canonical form.
pub fn print_region_def(region: &RegionDef) -> String {
    let mut body = String::new();
    if let Some(args) = &region.arguments {
        let _ = write!(body, " Arguments ({})", print_args(args));
    }
    if let Some(terminator) = &region.terminator {
        let _ = write!(body, " Terminator {terminator}");
    }
    format!("Region {} {{{body} }}", region.name)
}

/// Renders a single dialect item in canonical form (without the enclosing
/// `Dialect` shell), used by the meta-dialect's verbatim encoding.
pub fn print_item(item: &Item) -> String {
    let shell = DialectDef {
        name: "d".to_string(),
        summary: None,
        items: vec![item.clone()],
        span: 0,
    };
    let text = print_dialect(&shell);
    // Drop the `Dialect d {` / `}` shell, keep the item's own lines.
    text.lines()
        .skip(1)
        .take_while(|l| *l != "}")
        .map(|l| l.strip_prefix("  ").unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_args(args: &[ArgDef]) -> String {
    args.iter()
        .map(|arg| {
            let inner = print_expr(&arg.constraint);
            let constraint = match arg.variadicity {
                Variadicity::Single => inner,
                Variadicity::Variadic => format!("Variadic<{inner}>"),
                Variadicity::Optional => format!("Optional<{inner}>"),
            };
            format!("{}: {constraint}", arg.name)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a constraint expression in canonical form.
pub fn print_expr(expr: &ConstraintExpr) -> String {
    match expr {
        ConstraintExpr::AnyType => "!AnyType".to_string(),
        ConstraintExpr::AnyAttr => "#AnyAttr".to_string(),
        ConstraintExpr::AnyParam => "AnyParam".to_string(),
        ConstraintExpr::Ref { sigil, path, args, .. } => {
            let sigil = match sigil {
                Sigil::Type => "!",
                Sigil::Attr => "#",
                Sigil::None => "",
            };
            let mut out = format!("{sigil}{}", path.join("."));
            if !args.is_empty() {
                let args: Vec<String> = args.iter().map(print_expr).collect();
                let _ = write!(out, "<{}>", args.join(", "));
            }
            out
        }
        ConstraintExpr::IntKind(kind) => kind.keyword(),
        ConstraintExpr::IntLiteral { value, kind } => format!("{value} : {}", kind.keyword()),
        ConstraintExpr::StringAny => "string".to_string(),
        ConstraintExpr::StringLiteral(s) => quote(s),
        ConstraintExpr::ArrayAny => "array".to_string(),
        ConstraintExpr::ArrayOf(inner) => format!("array<{}>", print_expr(inner)),
        ConstraintExpr::ArrayExact(items) => {
            let items: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", items.join(", "))
        }
        ConstraintExpr::AnyOf(items) => {
            let items: Vec<String> = items.iter().map(print_expr).collect();
            format!("AnyOf<{}>", items.join(", "))
        }
        ConstraintExpr::And(items) => {
            let items: Vec<String> = items.iter().map(print_expr).collect();
            format!("And<{}>", items.join(", "))
        }
        ConstraintExpr::Not(inner) => format!("Not<{}>", print_expr(inner)),
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", irdl_ir::print::escape_string(s))
}

/// Strips spans so ASTs can be compared structurally after a round-trip.
pub fn strip_spans(file: &mut SourceFile) {
    for dialect in &mut file.dialects {
        dialect.span = 0;
        for item in &mut dialect.items {
            strip_item(item);
        }
    }
}

fn strip_item(item: &mut Item) {
    match item {
        Item::Type(def) | Item::Attribute(def) => {
            def.span = 0;
            for p in &mut def.parameters {
                p.span = 0;
                strip_expr(&mut p.constraint);
            }
        }
        Item::Alias(def) => {
            def.span = 0;
            strip_expr(&mut def.body);
        }
        Item::Enum(def) => def.span = 0,
        Item::Constraint(def) => {
            def.span = 0;
            strip_expr(&mut def.base);
        }
        Item::TypeOrAttrParam(def) => def.span = 0,
        Item::Operation(def) => {
            def.span = 0;
            for v in &mut def.constraint_vars {
                v.span = 0;
                strip_expr(&mut v.constraint);
            }
            for a in def.operands.iter_mut().chain(def.results.iter_mut()) {
                a.span = 0;
                strip_expr(&mut a.constraint);
            }
            for a in &mut def.attributes {
                a.span = 0;
                strip_expr(&mut a.constraint);
            }
            for r in &mut def.regions {
                r.span = 0;
                if let Some(args) = &mut r.arguments {
                    for a in args {
                        a.span = 0;
                        strip_expr(&mut a.constraint);
                    }
                }
            }
        }
    }
}

fn strip_expr(expr: &mut ConstraintExpr) {
    match expr {
        ConstraintExpr::Ref { args, span, .. } => {
            *span = 0;
            for a in args {
                strip_expr(a);
            }
        }
        ConstraintExpr::ArrayOf(inner) | ConstraintExpr::Not(inner) => strip_expr(inner),
        ConstraintExpr::ArrayExact(items)
        | ConstraintExpr::AnyOf(items)
        | ConstraintExpr::And(items) => {
            for item in items {
                strip_expr(item);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_irdl;

    fn roundtrip(src: &str) {
        let mut first = parse_irdl(src).unwrap();
        let printed = print_source(&first);
        let mut second = parse_irdl(&printed)
            .unwrap_or_else(|e| panic!("printed form does not parse:\n{printed}\n{e}"));
        strip_spans(&mut first);
        strip_spans(&mut second);
        // The printer canonicalizes sigils on names (constraint-variable
        // names always print with `!`), so compare after one more cycle.
        let reprinted = print_source(&second);
        assert_eq!(printed, reprinted, "printing is not a fixpoint");
        assert_eq!(first.dialects.len(), second.dialects.len());
    }

    #[test]
    fn roundtrip_cmath() {
        roundtrip(
            r#"Dialect cmath {
                Summary "Complex arithmetic"
                Alias !FloatType = !AnyOf<!f32, !f64>
                Type complex { Parameters (elementType: !FloatType) Summary "A complex number" }
                Operation mul {
                    ConstraintVar (!T: !complex<!FloatType>)
                    Operands (lhs: !T, rhs: !T)
                    Results (res: !T)
                    Format "$lhs, $rhs : $T.elementType"
                }
            }"#,
        );
    }

    #[test]
    fn roundtrip_full_feature_set() {
        roundtrip(
            r#"Dialect full {
                Enum mode { A, B, C }
                TypeOrAttrParam P { Summary "s" NativeType "string_param" }
                Constraint C : And<int32_t, Not<0 : int32_t>> { NativeConstraint "bounded_u32" }
                Attribute a { Parameters (x: [string, array<uint8_t>], y: mode.B) }
                Operation o {
                    Operands (v: Variadic<!AnyType>, w: Optional<!f32>)
                    Results (r: !AnyType)
                    Attributes (k: C)
                    Region body { Arguments (i: !i32) Terminator t }
                    Region plain { }
                    Successors (yes, no)
                    NativeVerifier "cross_operand_check"
                }
                Operation t { Successors () }
            }"#,
        );
    }

    #[test]
    fn roundtrip_whole_corpus() {
        for (name, source) in irdl_dialects_sources() {
            let mut first = parse_irdl(&source).unwrap();
            let printed = print_source(&first);
            let mut second = parse_irdl(&printed)
                .unwrap_or_else(|e| panic!("{name}: printed corpus does not parse: {e}"));
            strip_spans(&mut first);
            strip_spans(&mut second);
            assert_eq!(print_source(&second), printed, "{name}: not a fixpoint");
        }
    }

    /// A tiny stand-in so the core crate does not depend on the corpus
    /// crate: exercise the printer on a few generated-shape sources.
    fn irdl_dialects_sources() -> Vec<(String, String)> {
        vec![(
            "generated_shape".to_string(),
            r#"Dialect g {
                Summary "generated"
                Enum mode { Default, Fast, Strict }
                Type ty_0 { Parameters (p0: !AnyType) Summary "t" }
                Operation op_0 {
                    Operands (v0: !AnyInteger, v1: Variadic<!AnyFloat>)
                    Results (r0: !i32)
                    Attributes (a0: #i64_attr)
                    Region region0 { Arguments (arg0: !AnyType) }
                    NativeVerifier "cross_operand_check"
                    Summary "g operation #0"
                }
            }"#
            .to_string(),
        )]
    }
}
