//! The compiled constraint language and its evaluator.
//!
//! [`Constraint`] is the runtime form of the paper's Figure 2: type and
//! attribute constraints, parameter constraints, the generic combinators
//! (`AnyOf` / `And` / `Not`), constraint variables, and native (IRDL-Rust)
//! predicates. Evaluation happens against a [`CVal`] — a type or an
//! attribute — under a [`BindingEnv`] that gives constraint variables their
//! "equal at every use" semantics (paper §4.6).

use std::sync::Arc;

use irdl_ir::attrs::AttrData;
use irdl_ir::types::TypeData;
use irdl_ir::{Attribute, Context, FloatKind, Signedness, Symbol, Type};

use crate::ast::IntKind;

/// A constrained value: an SSA type or a static attribute.
///
/// Type-valued parameters (stored as
/// [`AttrData::TypeAttr`]) are eagerly unwrapped
/// into [`CVal::Type`] before evaluation, so type constraints apply
/// uniformly to operand types and to type parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CVal {
    /// A type.
    Type(Type),
    /// A non-type attribute.
    Attr(Attribute),
}

impl CVal {
    /// Wraps an attribute, unwrapping type attributes into [`CVal::Type`].
    pub fn from_attr(ctx: &Context, attr: Attribute) -> CVal {
        match ctx.attr_data(attr) {
            AttrData::TypeAttr(ty) => CVal::Type(*ty),
            _ => CVal::Attr(attr),
        }
    }

    /// Converts back to an attribute (types become type attributes).
    pub fn into_attr(self, ctx: &mut Context) -> Attribute {
        match self {
            CVal::Type(ty) => ctx.type_attr(ty),
            CVal::Attr(attr) => attr,
        }
    }

    /// Renders the value for diagnostics.
    pub fn display(self, ctx: &Context) -> String {
        match self {
            CVal::Type(ty) => ty.display(ctx),
            CVal::Attr(attr) => attr.display(ctx),
        }
    }
}

/// Classes of builtin (structural) types, usable as IRDL constraints via
/// the `!AnyInteger` / `!AnyFloat` / ... extension keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// Any builtin integer type.
    AnyInteger,
    /// Any builtin float type.
    AnyFloat,
    /// The `index` type.
    Index,
    /// Any `vector` type.
    AnyVector,
    /// Any `tensor` type.
    AnyTensor,
    /// Any `memref` type.
    AnyMemRef,
    /// Any function type.
    AnyFunction,
}

impl TypeClass {
    /// Returns `true` when `ty` belongs to the class.
    pub fn matches(self, ctx: &Context, ty: Type) -> bool {
        matches!(
            (self, ctx.type_data(ty)),
            (TypeClass::AnyInteger, TypeData::Integer { .. })
                | (TypeClass::AnyFloat, TypeData::Float(_))
                | (TypeClass::Index, TypeData::Index)
                | (TypeClass::AnyVector, TypeData::Vector { .. })
                | (TypeClass::AnyTensor, TypeData::Tensor { .. })
                | (TypeClass::AnyMemRef, TypeData::MemRef { .. })
                | (TypeClass::AnyFunction, TypeData::Function { .. })
        )
    }
}

/// A native (IRDL-Rust) predicate over a constrained value.
pub type NativePred = Arc<dyn Fn(&Context, &CVal) -> Result<(), String> + Send + Sync>;

/// A compiled constraint (runtime form of paper Figure 2).
#[derive(Clone)]
pub enum Constraint {
    /// `AnyParam`: matches any type or attribute.
    Any,
    /// `!AnyType`: matches any type.
    AnyType,
    /// `#AnyAttr`: matches any (non-type) attribute.
    AnyAttr,
    /// A specific type, e.g. `!f32`.
    ExactType(Type),
    /// Any type with the given base name, e.g. `!complex` (paper Fig 2a).
    BaseType {
        /// Owning dialect.
        dialect: Symbol,
        /// Type name.
        name: Symbol,
    },
    /// A parameterized type pattern, e.g. `!complex<!FloatType>`.
    ParametricType {
        /// Owning dialect.
        dialect: Symbol,
        /// Type name.
        name: Symbol,
        /// Per-parameter constraints.
        params: Vec<Constraint>,
    },
    /// A class of builtin structural types.
    Class(TypeClass),
    /// A specific attribute value.
    ExactAttr(Attribute),
    /// Any attribute with the given base name.
    BaseAttr {
        /// Owning dialect.
        dialect: Symbol,
        /// Attribute name.
        name: Symbol,
    },
    /// A parameterized attribute pattern.
    ParametricAttr {
        /// Owning dialect.
        dialect: Symbol,
        /// Attribute name.
        name: Symbol,
        /// Per-parameter constraints.
        params: Vec<Constraint>,
    },
    /// An integer parameter of a given width/signedness (`int32_t`, ...).
    Int(IntKind),
    /// An exact integer literal (`3 : int32_t`).
    IntLiteral {
        /// Required value.
        value: i128,
        /// Required encoding.
        kind: IntKind,
    },
    /// A float parameter (`#f32_attr`); `None` accepts any float format.
    FloatAttr(Option<FloatKind>),
    /// Any string parameter (`string`).
    StringAny,
    /// An exact string literal (`"foo"`).
    StringLiteral(String),
    /// A boolean parameter.
    BoolAttr,
    /// The unit attribute.
    UnitAttr,
    /// A symbol-reference parameter (`@name`).
    SymbolRefAttr,
    /// A source-location parameter.
    LocationAttr,
    /// A host-type-id parameter.
    TypeIdAttr,
    /// Any array parameter (`array`).
    ArrayAny,
    /// `array<pc>`: all elements satisfy the constraint.
    ArrayOf(Box<Constraint>),
    /// `[pc1, ..., pcN]`: exactly N constrained elements.
    ArrayExact(Vec<Constraint>),
    /// Any constructor of an enum (`signedness`).
    EnumAny {
        /// Owning dialect.
        dialect: Symbol,
        /// Enum name.
        name: Symbol,
    },
    /// A specific enum constructor (`signedness.Signed`).
    EnumVariant {
        /// Owning dialect.
        dialect: Symbol,
        /// Enum name.
        name: Symbol,
        /// Constructor.
        variant: Symbol,
    },
    /// A native parameter kind (`TypeOrAttrParam`, paper §5.2).
    NativeParam {
        /// Registered kind name.
        kind: Symbol,
    },
    /// `AnyOf<c1, ..., cN>`.
    AnyOf(Vec<Constraint>),
    /// `And<c1, ..., cN>`.
    And(Vec<Constraint>),
    /// `Not<c>`.
    Not(Box<Constraint>),
    /// A constraint variable (index into the op's variable table).
    Var(u32),
    /// A named native (IRDL-Rust) predicate (paper §5.1).
    Native {
        /// The registered name (kept for introspection and Figure 12).
        name: String,
        /// The predicate itself.
        pred: NativePred,
    },
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Constraint::Any => write!(f, "Any"),
            Constraint::AnyType => write!(f, "AnyType"),
            Constraint::AnyAttr => write!(f, "AnyAttr"),
            Constraint::ExactType(t) => write!(f, "ExactType({t:?})"),
            Constraint::BaseType { dialect, name } => {
                write!(f, "BaseType({dialect:?}.{name:?})")
            }
            Constraint::ParametricType { dialect, name, params } => {
                write!(f, "ParametricType({dialect:?}.{name:?}, {params:?})")
            }
            Constraint::Class(c) => write!(f, "Class({c:?})"),
            Constraint::ExactAttr(a) => write!(f, "ExactAttr({a:?})"),
            Constraint::BaseAttr { dialect, name } => {
                write!(f, "BaseAttr({dialect:?}.{name:?})")
            }
            Constraint::ParametricAttr { dialect, name, params } => {
                write!(f, "ParametricAttr({dialect:?}.{name:?}, {params:?})")
            }
            Constraint::Int(kind) => write!(f, "Int({})", kind.keyword()),
            Constraint::IntLiteral { value, kind } => {
                write!(f, "IntLiteral({value} : {})", kind.keyword())
            }
            Constraint::FloatAttr(kind) => write!(f, "FloatAttr({kind:?})"),
            Constraint::StringAny => write!(f, "StringAny"),
            Constraint::StringLiteral(s) => write!(f, "StringLiteral({s:?})"),
            Constraint::BoolAttr => write!(f, "BoolAttr"),
            Constraint::UnitAttr => write!(f, "UnitAttr"),
            Constraint::SymbolRefAttr => write!(f, "SymbolRefAttr"),
            Constraint::LocationAttr => write!(f, "LocationAttr"),
            Constraint::TypeIdAttr => write!(f, "TypeIdAttr"),
            Constraint::ArrayAny => write!(f, "ArrayAny"),
            Constraint::ArrayOf(c) => write!(f, "ArrayOf({c:?})"),
            Constraint::ArrayExact(cs) => write!(f, "ArrayExact({cs:?})"),
            Constraint::EnumAny { dialect, name } => write!(f, "EnumAny({dialect:?}.{name:?})"),
            Constraint::EnumVariant { dialect, name, variant } => {
                write!(f, "EnumVariant({dialect:?}.{name:?}.{variant:?})")
            }
            Constraint::NativeParam { kind } => write!(f, "NativeParam({kind:?})"),
            Constraint::AnyOf(cs) => write!(f, "AnyOf({cs:?})"),
            Constraint::And(cs) => write!(f, "And({cs:?})"),
            Constraint::Not(c) => write!(f, "Not({c:?})"),
            Constraint::Var(i) => write!(f, "Var({i})"),
            Constraint::Native { name, .. } => write!(f, "Native({name:?})"),
        }
    }
}

/// Bindings for constraint variables during one verification.
///
/// A variable binds on first successful use; later uses must be equal —
/// "constraints that need to be satisfied by the same type at each use"
/// (paper §4.6).
#[derive(Debug, Clone, Default)]
pub struct BindingEnv {
    /// Inline up to 8 variables: specs rarely declare more, so building an
    /// environment per parsed/verified op stays allocation-free.
    bindings: irdl_ir::InlineVec<Option<CVal>, 8>,
}

impl BindingEnv {
    /// An environment for `n` variables, all unbound.
    pub fn new(n: usize) -> Self {
        let mut env = BindingEnv::default();
        for _ in 0..n {
            env.bindings.push(None);
        }
        env
    }

    /// The current binding of variable `i`, if any.
    pub fn binding(&self, i: u32) -> Option<CVal> {
        self.bindings.get(i as usize).copied().flatten()
    }

    /// Binds variable `i` (overwriting any previous binding). The
    /// environment grows as needed, so out-of-range indices are never a
    /// panic.
    pub fn bind(&mut self, i: u32, val: CVal) {
        while i as usize >= self.bindings.len() {
            self.bindings.push(None);
        }
        self.bindings[i as usize] = Some(val);
    }
}

/// Evaluates `constraint` against `val` under `env`.
///
/// `var_decls` supplies the declared constraint of each variable (checked
/// on first binding).
///
/// `AnyOf` commits the bindings of the first matching alternative; the
/// evaluator does not backtrack across *subsequent* constraints (matching
/// is greedy per value, as in upstream IRDL). A specification relying on a
/// later operand to disambiguate an earlier `AnyOf` choice should bind the
/// shared part with a constraint variable instead.
///
/// # Errors
///
/// Returns a human-readable description of the first violated constraint.
pub fn eval(
    ctx: &Context,
    constraint: &Constraint,
    val: CVal,
    env: &mut BindingEnv,
    var_decls: &[Constraint],
) -> Result<(), String> {
    match constraint {
        Constraint::Any => Ok(()),
        Constraint::AnyType => match val {
            CVal::Type(_) => Ok(()),
            CVal::Attr(_) => Err(format!("expected a type, got {}", val.display(ctx))),
        },
        Constraint::AnyAttr => match val {
            CVal::Attr(_) => Ok(()),
            CVal::Type(_) => Err(format!("expected an attribute, got {}", val.display(ctx))),
        },
        Constraint::ExactType(expected) => match val {
            CVal::Type(ty) if ty == *expected => Ok(()),
            _ => Err(format!(
                "expected type {}, got {}",
                expected.display(ctx),
                val.display(ctx)
            )),
        },
        Constraint::BaseType { dialect, name } => match val {
            CVal::Type(ty) if ty.parametric_name(ctx) == Some((*dialect, *name)) => Ok(()),
            _ => Err(format!(
                "expected a !{}.{} type, got {}",
                ctx.symbol_str(*dialect),
                ctx.symbol_str(*name),
                val.display(ctx)
            )),
        },
        Constraint::ParametricType { dialect, name, params } => {
            let CVal::Type(ty) = val else {
                return Err(format!("expected a type, got {}", val.display(ctx)));
            };
            if ty.parametric_name(ctx) != Some((*dialect, *name)) {
                return Err(format!(
                    "expected a !{}.{} type, got {}",
                    ctx.symbol_str(*dialect),
                    ctx.symbol_str(*name),
                    val.display(ctx)
                ));
            }
            let actual = ty.params(ctx);
            if actual.len() != params.len() {
                return Err(format!(
                    "type {} has {} parameter(s); constraint expects {}",
                    val.display(ctx),
                    actual.len(),
                    params.len()
                ));
            }
            for (attr, pc) in actual.iter().zip(params) {
                eval(ctx, pc, CVal::from_attr(ctx, *attr), env, var_decls)?;
            }
            Ok(())
        }
        Constraint::Class(class) => match val {
            CVal::Type(ty) if class.matches(ctx, ty) => Ok(()),
            _ => Err(format!("{} does not belong to {class:?}", val.display(ctx))),
        },
        Constraint::ExactAttr(expected) => match val {
            CVal::Attr(attr) if attr == *expected => Ok(()),
            _ => Err(format!(
                "expected attribute {}, got {}",
                expected.display(ctx),
                val.display(ctx)
            )),
        },
        Constraint::BaseAttr { dialect, name } => match val {
            CVal::Attr(attr) if attr.parametric_name(ctx) == Some((*dialect, *name)) => Ok(()),
            _ => Err(format!(
                "expected a #{}.{} attribute, got {}",
                ctx.symbol_str(*dialect),
                ctx.symbol_str(*name),
                val.display(ctx)
            )),
        },
        Constraint::ParametricAttr { dialect, name, params } => {
            let CVal::Attr(attr) = val else {
                return Err(format!("expected an attribute, got {}", val.display(ctx)));
            };
            if attr.parametric_name(ctx) != Some((*dialect, *name)) {
                return Err(format!(
                    "expected a #{}.{} attribute, got {}",
                    ctx.symbol_str(*dialect),
                    ctx.symbol_str(*name),
                    val.display(ctx)
                ));
            }
            let actual = match ctx.attr_data(attr) {
                AttrData::Parametric { params, .. } => params.as_slice(),
                _ => unreachable!("parametric_name implies parametric data"),
            };
            if actual.len() != params.len() {
                return Err(format!(
                    "attribute {} has {} parameter(s); constraint expects {}",
                    val.display(ctx),
                    actual.len(),
                    params.len()
                ));
            }
            for (a, pc) in actual.iter().zip(params) {
                eval(ctx, pc, CVal::from_attr(ctx, *a), env, var_decls)?;
            }
            Ok(())
        }
        Constraint::Int(kind) => {
            int_matches(ctx, val, *kind, None).map_err(|e| e.to_string())
        }
        Constraint::IntLiteral { value, kind } => {
            int_matches(ctx, val, *kind, Some(*value)).map_err(|e| e.to_string())
        }
        Constraint::FloatAttr(kind) => match val {
            CVal::Attr(attr) => match ctx.attr_data(attr) {
                AttrData::Float { kind: actual, .. } => match kind {
                    Some(expected) if actual != expected => Err(format!(
                        "expected a {} float, got {}",
                        expected.keyword(),
                        val.display(ctx)
                    )),
                    _ => Ok(()),
                },
                _ => Err(format!("expected a float parameter, got {}", val.display(ctx))),
            },
            _ => Err(format!("expected a float parameter, got {}", val.display(ctx))),
        },
        Constraint::StringAny => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::String(_)) => Ok(()),
            _ => Err(format!("expected a string parameter, got {}", val.display(ctx))),
        },
        Constraint::StringLiteral(expected) => match val {
            CVal::Attr(attr) => match ctx.attr_data(attr) {
                AttrData::String(s) if **s == **expected => Ok(()),
                _ => Err(format!("expected \"{expected}\", got {}", val.display(ctx))),
            },
            _ => Err(format!("expected \"{expected}\", got {}", val.display(ctx))),
        },
        Constraint::BoolAttr => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::Bool(_)) => Ok(()),
            _ => Err(format!("expected a boolean parameter, got {}", val.display(ctx))),
        },
        Constraint::UnitAttr => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::Unit) => Ok(()),
            _ => Err(format!("expected the unit attribute, got {}", val.display(ctx))),
        },
        Constraint::SymbolRefAttr => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::SymbolRef(_)) => Ok(()),
            _ => Err(format!("expected a symbol reference, got {}", val.display(ctx))),
        },
        Constraint::LocationAttr => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::Location { .. }) => Ok(()),
            _ => Err(format!("expected a location, got {}", val.display(ctx))),
        },
        Constraint::TypeIdAttr => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::TypeId(_)) => Ok(()),
            _ => Err(format!("expected a type id, got {}", val.display(ctx))),
        },
        Constraint::ArrayAny => match val {
            CVal::Attr(attr) if matches!(ctx.attr_data(attr), AttrData::Array(_)) => Ok(()),
            _ => Err(format!("expected an array parameter, got {}", val.display(ctx))),
        },
        Constraint::ArrayOf(inner) => {
            let items = array_items(ctx, val)?;
            for &item in items {
                eval(ctx, inner, CVal::from_attr(ctx, item), env, var_decls)?;
            }
            Ok(())
        }
        Constraint::ArrayExact(constraints) => {
            let items = array_items(ctx, val)?;
            if items.len() != constraints.len() {
                return Err(format!(
                    "expected an array of {} element(s), got {}",
                    constraints.len(),
                    items.len()
                ));
            }
            for (item, pc) in items.iter().zip(constraints) {
                eval(ctx, pc, CVal::from_attr(ctx, *item), env, var_decls)?;
            }
            Ok(())
        }
        Constraint::EnumAny { dialect, name } => match val {
            CVal::Attr(attr) => match ctx.attr_data(attr) {
                AttrData::EnumValue { dialect: d, enum_name: e, .. }
                    if d == dialect && e == name =>
                {
                    Ok(())
                }
                _ => Err(format!(
                    "expected a {}.{} enum value, got {}",
                    ctx.symbol_str(*dialect),
                    ctx.symbol_str(*name),
                    val.display(ctx)
                )),
            },
            _ => Err(format!("expected an enum value, got {}", val.display(ctx))),
        },
        Constraint::EnumVariant { dialect, name, variant } => match val {
            CVal::Attr(attr) => match ctx.attr_data(attr) {
                AttrData::EnumValue { dialect: d, enum_name: e, variant: v }
                    if d == dialect && e == name && v == variant =>
                {
                    Ok(())
                }
                _ => Err(format!(
                    "expected enum constructor {}.{}, got {}",
                    ctx.symbol_str(*name),
                    ctx.symbol_str(*variant),
                    val.display(ctx)
                )),
            },
            _ => Err(format!("expected an enum value, got {}", val.display(ctx))),
        },
        Constraint::NativeParam { kind } => match val {
            CVal::Attr(attr) => match ctx.attr_data(attr) {
                AttrData::Native { kind: k, .. } if k == kind => Ok(()),
                _ => Err(format!(
                    "expected a native `{}` parameter, got {}",
                    ctx.symbol_str(*kind),
                    val.display(ctx)
                )),
            },
            _ => Err(format!("expected a native parameter, got {}", val.display(ctx))),
        },
        Constraint::AnyOf(choices) => {
            let mut last_err = String::from("AnyOf<> with no alternatives never matches");
            for choice in choices {
                let mut attempt = env.clone();
                match eval(ctx, choice, val, &mut attempt, var_decls) {
                    Ok(()) => {
                        *env = attempt;
                        return Ok(());
                    }
                    Err(e) => last_err = e,
                }
            }
            Err(format!("{} satisfied no alternative: {last_err}", val.display(ctx)))
        }
        Constraint::And(parts) => {
            for part in parts {
                eval(ctx, part, val, env, var_decls)?;
            }
            Ok(())
        }
        Constraint::Not(inner) => {
            let mut scratch = env.clone();
            match eval(ctx, inner, val, &mut scratch, var_decls) {
                Ok(()) => Err(format!(
                    "{} matches a constraint it must not match",
                    val.display(ctx)
                )),
                Err(_) => Ok(()),
            }
        }
        Constraint::Var(i) => match env.binding(*i) {
            Some(bound) => {
                if bound == val {
                    Ok(())
                } else {
                    Err(format!(
                        "constraint variable already bound to {}, got {}",
                        bound.display(ctx),
                        val.display(ctx)
                    ))
                }
            }
            None => {
                let decl = var_decls.get(*i as usize).cloned().unwrap_or(Constraint::Any);
                eval(ctx, &decl, val, env, var_decls)?;
                env.bind(*i, val);
                Ok(())
            }
        },
        Constraint::Native { name, pred } => pred(ctx, &val)
            .map_err(|e| format!("native constraint `{name}` failed: {e}")),
    }
}

fn array_items(ctx: &Context, val: CVal) -> Result<&[Attribute], String> {
    match val {
        CVal::Attr(attr) => match ctx.attr_data(attr) {
            AttrData::Array(items) => Ok(items),
            _ => Err(format!("expected an array parameter, got {}", val.display(ctx))),
        },
        _ => Err(format!("expected an array parameter, got {}", val.display(ctx))),
    }
}

fn int_matches(
    ctx: &Context,
    val: CVal,
    kind: IntKind,
    literal: Option<i128>,
) -> Result<(), String> {
    let CVal::Attr(attr) = val else {
        return Err(format!("expected an integer parameter, got {}", val.display(ctx)));
    };
    let AttrData::Integer { value, ty } = ctx.attr_data(attr) else {
        return Err(format!("expected an integer parameter, got {}", val.display(ctx)));
    };
    let (value, ty) = (*value, *ty);
    let TypeData::Integer { width, signedness } = ctx.type_data(ty) else {
        return Err(format!(
            "expected an integer parameter, got {} of type {}",
            val.display(ctx),
            ty.display(ctx)
        ));
    };
    if *width != kind.width {
        return Err(format!(
            "expected a {}-bit integer, got {}-bit",
            kind.width, width
        ));
    }
    let sign_ok = match signedness {
        Signedness::Signless => true,
        Signedness::Signed => !kind.unsigned,
        Signedness::Unsigned => kind.unsigned,
    };
    if !sign_ok {
        return Err(format!(
            "integer signedness does not match {}",
            kind.keyword()
        ));
    }
    if !kind.fits(value) {
        return Err(format!("value {value} does not fit in {}", kind.keyword()));
    }
    if let Some(expected) = literal {
        if value != expected {
            return Err(format!("expected the literal {expected}, got {value}"));
        }
    }
    Ok(())
}

/// Attempts to compute the unique value satisfying `constraint` under the
/// (possibly partial) bindings in `env`. Used by declarative-format type
/// inference (paper §4.7).
///
/// Returns `None` when the constraint does not pin down a single value.
pub fn concretize(
    ctx: &mut Context,
    constraint: &Constraint,
    env: &BindingEnv,
) -> Option<CVal> {
    match constraint {
        Constraint::ExactType(ty) => Some(CVal::Type(*ty)),
        Constraint::ExactAttr(attr) => Some(CVal::Attr(*attr)),
        Constraint::Var(i) => env.binding(*i),
        Constraint::ParametricType { dialect, name, params } => {
            let mut args = Vec::with_capacity(params.len());
            for pc in params {
                let v = concretize(ctx, pc, env)?;
                args.push(v.into_attr(ctx));
            }
            ctx.parametric_type_syms(*dialect, *name, args).ok().map(CVal::Type)
        }
        Constraint::ParametricAttr { dialect, name, params } => {
            let mut args = Vec::with_capacity(params.len());
            for pc in params {
                let v = concretize(ctx, pc, env)?;
                args.push(v.into_attr(ctx));
            }
            ctx.parametric_attr_syms(*dialect, *name, args).ok().map(CVal::Attr)
        }
        Constraint::IntLiteral { value, kind } => {
            // Match the literal's declared signedness, as eval/sample do.
            let ty = ctx.int_type_with_signedness(
                kind.width,
                if kind.unsigned { Signedness::Unsigned } else { Signedness::Signless },
            );
            Some(CVal::Attr(ctx.int_attr(*value, ty)))
        }
        Constraint::StringLiteral(s) => Some(CVal::Attr(ctx.string_attr(s.clone()))),
        Constraint::EnumVariant { dialect, name, variant } => {
            let attr = ctx.intern_attr(AttrData::EnumValue {
                dialect: *dialect,
                enum_name: *name,
                variant: *variant,
            });
            Some(CVal::Attr(attr))
        }
        Constraint::ArrayExact(items) => {
            let mut out = Vec::with_capacity(items.len());
            for pc in items {
                let v = concretize(ctx, pc, env)?;
                out.push(v.into_attr(ctx));
            }
            Some(CVal::Attr(ctx.array_attr(out)))
        }
        Constraint::And(parts) => {
            // A witness from one conjunct must still satisfy the others.
            let witness = parts.iter().find_map(|p| concretize(ctx, p, env))?;
            let mut scratch = env.clone();
            for part in parts {
                eval(ctx, part, witness, &mut scratch, &[]).ok()?;
            }
            Some(witness)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ctx: &Context, c: &Constraint, val: CVal) -> Result<(), String> {
        let mut env = BindingEnv::new(0);
        eval(ctx, c, val, &mut env, &[])
    }

    #[test]
    fn exact_type_constraint() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f64 = ctx.f64_type();
        let c = Constraint::ExactType(f32);
        assert!(ev(&ctx, &c, CVal::Type(f32)).is_ok());
        assert!(ev(&ctx, &c, CVal::Type(f64)).is_err());
    }

    #[test]
    fn anyof_and_not() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f64 = ctx.f64_type();
        let i32 = ctx.i32_type();
        let float_ty = Constraint::AnyOf(vec![
            Constraint::ExactType(f32),
            Constraint::ExactType(f64),
        ]);
        assert!(ev(&ctx, &float_ty, CVal::Type(f32)).is_ok());
        assert!(ev(&ctx, &float_ty, CVal::Type(i32)).is_err());
        let not_f32 = Constraint::Not(Box::new(Constraint::ExactType(f32)));
        assert!(ev(&ctx, &not_f32, CVal::Type(f64)).is_ok());
        assert!(ev(&ctx, &not_f32, CVal::Type(f32)).is_err());
    }

    #[test]
    fn nonnull_int_from_paper() {
        // And<int32_t, Not<0 : int32_t>> (paper §4.3).
        let mut ctx = Context::new();
        let kind = IntKind { width: 32, unsigned: false };
        let c = Constraint::And(vec![
            Constraint::Int(kind),
            Constraint::Not(Box::new(Constraint::IntLiteral { value: 0, kind })),
        ]);
        let three = ctx.i32_attr(3);
        let zero = ctx.i32_attr(0);
        assert!(ev(&ctx, &c, CVal::Attr(three)).is_ok());
        assert!(ev(&ctx, &c, CVal::Attr(zero)).is_err());
    }

    #[test]
    fn parametric_type_constraint_binds_vars() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f32a = ctx.type_attr(f32);
        let complex_f32 = ctx.parametric_type("cmath", "complex", [f32a]).unwrap();
        let dialect = ctx.symbol("cmath");
        let name = ctx.symbol("complex");
        // T bound through !complex<!T>.
        let decls = vec![Constraint::AnyType];
        let c = Constraint::ParametricType { dialect, name, params: vec![Constraint::Var(0)] };
        let mut env = BindingEnv::new(1);
        eval(&ctx, &c, CVal::Type(complex_f32), &mut env, &decls).unwrap();
        assert_eq!(env.binding(0), Some(CVal::Type(f32)));
        // A second use must be equal.
        let var = Constraint::Var(0);
        assert!(eval(&ctx, &var, CVal::Type(f32), &mut env, &decls).is_ok());
        let f64 = ctx.f64_type();
        assert!(eval(&ctx, &var, CVal::Type(f64), &mut env, &decls).is_err());
    }

    #[test]
    fn var_binding_rolls_back_in_anyof() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let i32 = ctx.i32_type();
        let decls = vec![Constraint::ExactType(i32)];
        // First alternative binds the var but then fails overall; second
        // alternative succeeds without binding.
        let c = Constraint::AnyOf(vec![
            Constraint::And(vec![Constraint::Var(0), Constraint::ExactType(i32)]),
            Constraint::AnyType,
        ]);
        let mut env = BindingEnv::new(1);
        eval(&ctx, &c, CVal::Type(f32), &mut env, &decls).unwrap();
        assert_eq!(env.binding(0), None, "failed alternative must not leak bindings");
    }

    #[test]
    fn array_constraints() {
        let mut ctx = Context::new();
        let one = ctx.i32_attr(1);
        let two = ctx.i32_attr(2);
        let s = ctx.string_attr("x");
        let arr = ctx.array_attr([one, two]);
        let mixed = ctx.array_attr([one, s]);
        let kind = IntKind { width: 32, unsigned: false };
        let all_int = Constraint::ArrayOf(Box::new(Constraint::Int(kind)));
        assert!(ev(&ctx, &all_int, CVal::Attr(arr)).is_ok());
        assert!(ev(&ctx, &all_int, CVal::Attr(mixed)).is_err());
        let pair = Constraint::ArrayExact(vec![Constraint::Int(kind), Constraint::StringAny]);
        assert!(ev(&ctx, &pair, CVal::Attr(mixed)).is_ok());
        assert!(ev(&ctx, &pair, CVal::Attr(arr)).is_err());
    }

    #[test]
    fn native_predicate() {
        let mut ctx = Context::new();
        // BoundedInteger from Listing 10: uint32_t and <= 32.
        let c = Constraint::And(vec![
            Constraint::Int(IntKind { width: 32, unsigned: true }),
            Constraint::Native {
                name: "bounded_u32".into(),
                pred: Arc::new(|ctx, val| {
                    let CVal::Attr(attr) = val else { return Err("not an attr".into()) };
                    match attr.as_int(ctx) {
                        Some(v) if v <= 32 => Ok(()),
                        Some(v) => Err(format!("{v} > 32")),
                        None => Err("not an integer".into()),
                    }
                }),
            },
        ]);
        let ui32 = ctx.int_type_with_signedness(32, Signedness::Unsigned);
        let ok = ctx.int_attr(7, ui32);
        let too_big = ctx.int_attr(64, ui32);
        assert!(ev(&ctx, &c, CVal::Attr(ok)).is_ok());
        let err = ev(&ctx, &c, CVal::Attr(too_big)).unwrap_err();
        assert!(err.contains("bounded_u32"), "{err}");
    }

    #[test]
    fn concretize_parametric_type() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let dialect = ctx.symbol("cmath");
        let name = ctx.symbol("complex");
        let c = Constraint::ParametricType {
            dialect,
            name,
            params: vec![Constraint::Var(0)],
        };
        let mut env = BindingEnv::new(1);
        env.bind(0, CVal::Type(f32));
        let got = concretize(&mut ctx, &c, &env).unwrap();
        let CVal::Type(ty) = got else { panic!("expected type") };
        assert_eq!(ty.display(&ctx), "!cmath.complex<f32>");
    }

    #[test]
    fn type_classes() {
        let mut ctx = Context::new();
        let i32 = ctx.i32_type();
        let f32 = ctx.f32_type();
        let c = Constraint::Class(TypeClass::AnyInteger);
        assert!(ev(&ctx, &c, CVal::Type(i32)).is_ok());
        assert!(ev(&ctx, &c, CVal::Type(f32)).is_err());
    }
}
