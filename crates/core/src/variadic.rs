//! Variadic segment resolution (paper §4.6).
//!
//! Operand/result definitions may be `Variadic` (0+) or `Optional` (0/1).
//! With at most one variadic definition, segment sizes are implied by the
//! total count; with two or more, the operation must carry a segment-sizes
//! attribute ("an attribute containing the size of the variadic operands
//! and results is expected when Operands or Results contain more than one
//! variadic definition").

use crate::ast::Variadicity;

/// Name of the attribute carrying operand segment sizes.
///
/// The segment attributes live in the ordinary attribute dictionary (as in
/// MLIR); dialects should treat both names as reserved.
pub const OPERAND_SEGMENT_ATTR: &str = "operand_segment_sizes";
/// Name of the attribute carrying result segment sizes.
pub const RESULT_SEGMENT_ATTR: &str = "result_segment_sizes";

/// Computes the size of each definition's segment.
///
/// `total` is the actual operand/result count, `defs` the declared
/// variadicities, and `explicit` the decoded segment-sizes attribute if the
/// operation carries one.
///
/// # Errors
///
/// Returns a human-readable message when the counts cannot be reconciled.
pub fn resolve_segments(
    total: usize,
    defs: &[Variadicity],
    explicit: Option<&[i64]>,
) -> Result<Vec<usize>, String> {
    let mut out = Vec::with_capacity(defs.len());
    resolve_segments_into(total, defs, explicit, &mut out)?;
    Ok(out)
}

/// Like [`resolve_segments`], but writes into a caller-provided buffer
/// (cleared first), so a hot loop resolving segments per operation never
/// allocates once the buffer has reached its steady-state capacity.
///
/// # Errors
///
/// Returns a human-readable message when the counts cannot be reconciled;
/// `out` is left cleared or partially filled and must not be read.
pub fn resolve_segments_into(
    total: usize,
    defs: &[Variadicity],
    explicit: Option<&[i64]>,
    out: &mut Vec<usize>,
) -> Result<(), String> {
    out.clear();
    if let Some(sizes) = explicit {
        return check_explicit(total, defs, sizes, out);
    }
    let variadic_count =
        defs.iter().filter(|v| !matches!(v, Variadicity::Single)).count();
    match variadic_count {
        0 => {
            if total != defs.len() {
                return Err(format!(
                    "expected exactly {} value(s), got {total}",
                    defs.len()
                ));
            }
            out.resize(defs.len(), 1);
            Ok(())
        }
        1 => {
            let fixed = defs.len() - 1;
            if total < fixed {
                return Err(format!("expected at least {fixed} value(s), got {total}"));
            }
            let variadic_size = total - fixed;
            let index = defs
                .iter()
                .position(|v| !matches!(v, Variadicity::Single))
                .expect("counted above");
            if matches!(defs[index], Variadicity::Optional) && variadic_size > 1 {
                return Err(format!(
                    "optional definition #{index} matched {variadic_size} values"
                ));
            }
            out.extend((0..defs.len()).map(|i| if i == index { variadic_size } else { 1 }));
            Ok(())
        }
        _ => Err(format!(
            "{variadic_count} variadic definitions require a segment-sizes attribute"
        )),
    }
}

fn check_explicit(
    total: usize,
    defs: &[Variadicity],
    sizes: &[i64],
    out: &mut Vec<usize>,
) -> Result<(), String> {
    if sizes.len() != defs.len() {
        return Err(format!(
            "segment-sizes attribute has {} entries; {} definitions declared",
            sizes.len(),
            defs.len()
        ));
    }
    let mut sum = 0usize;
    for (i, (&size, def)) in sizes.iter().zip(defs).enumerate() {
        if size < 0 {
            return Err(format!("segment #{i} has negative size {size}"));
        }
        let size = size as usize;
        match def {
            Variadicity::Single if size != 1 => {
                return Err(format!("segment #{i} must have size 1, got {size}"));
            }
            Variadicity::Optional if size > 1 => {
                return Err(format!("segment #{i} is optional but has size {size}"));
            }
            _ => {}
        }
        sum += size;
        out.push(size);
    }
    if sum != total {
        return Err(format!("segment sizes sum to {sum}, but {total} value(s) are present"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use Variadicity::{Optional, Single, Variadic};

    #[test]
    fn all_single() {
        assert_eq!(resolve_segments(2, &[Single, Single], None).unwrap(), vec![1, 1]);
        assert!(resolve_segments(3, &[Single, Single], None).is_err());
    }

    #[test]
    fn one_variadic_absorbs_rest() {
        assert_eq!(
            resolve_segments(4, &[Single, Variadic, Single], None).unwrap(),
            vec![1, 2, 1]
        );
        assert_eq!(
            resolve_segments(2, &[Single, Variadic, Single], None).unwrap(),
            vec![1, 0, 1]
        );
        assert!(resolve_segments(1, &[Single, Variadic, Single], None).is_err());
    }

    #[test]
    fn optional_is_zero_or_one() {
        // Listing 6: log with an optional base operand (1 or 2 operands).
        assert_eq!(resolve_segments(1, &[Single, Optional], None).unwrap(), vec![1, 0]);
        assert_eq!(resolve_segments(2, &[Single, Optional], None).unwrap(), vec![1, 1]);
        let err = resolve_segments(3, &[Single, Optional], None).unwrap_err();
        assert!(err.contains("optional"), "{err}");
    }

    #[test]
    fn multiple_variadics_need_attribute() {
        let err = resolve_segments(4, &[Variadic, Variadic], None).unwrap_err();
        assert!(err.contains("segment-sizes"), "{err}");
        assert_eq!(
            resolve_segments(4, &[Variadic, Variadic], Some(&[3, 1])).unwrap(),
            vec![3, 1]
        );
        assert!(resolve_segments(4, &[Variadic, Variadic], Some(&[3, 2])).is_err());
        assert!(resolve_segments(4, &[Variadic, Variadic], Some(&[4])).is_err());
        assert!(resolve_segments(4, &[Variadic, Variadic], Some(&[-1, 5])).is_err());
    }

    #[test]
    fn explicit_sizes_respect_single_and_optional() {
        assert!(resolve_segments(3, &[Single, Variadic, Variadic], Some(&[2, 1, 0])).is_err());
        assert!(resolve_segments(4, &[Optional, Variadic, Variadic], Some(&[2, 1, 1])).is_err());
        assert_eq!(
            resolve_segments(4, &[Optional, Variadic, Variadic], Some(&[1, 2, 1])).unwrap(),
            vec![1, 2, 1]
        );
    }
}
