//! IRDL: an IR definition language for SSA compilers.
//!
//! This crate implements the language presented in *"IRDL: An IR Definition
//! Language for SSA Compilers"* (PLDI 2022): a domain-specific language for
//! defining compiler IR dialects — operations, types, attributes, and their
//! invariants — from a high-level declarative description, plus the
//! *IRDL-Rust* extension (the paper's IRDL-C++ analog) for invariants that
//! need a general-purpose language.
//!
//! A specification is compiled into a dynamically registered dialect on an
//! [`irdl_ir::Context`]: the compiler derives
//!
//! 1. **verifiers** from the constraint language (paper Figure 2),
//! 2. **parsers and printers** from declarative `Format` strings, and
//! 3. **registry metadata** consumed by introspection tooling (the
//!    evaluation statistics of the paper's §6).
//!
//! # Quickstart
//!
//! ```
//! use irdl_ir::Context;
//!
//! let spec = r#"
//! Dialect cmath {
//!   Alias !FloatType = !AnyOf<!f32, !f64>
//!   Type complex {
//!     Parameters (elementType: !FloatType)
//!     Summary "A complex number"
//!   }
//!   Operation norm {
//!     ConstraintVar (!T: !FloatType)
//!     Operands (c: !complex<!T>)
//!     Results (res: !T)
//!     Summary "Compute the norm of a complex number"
//!   }
//! }
//! "#;
//!
//! let mut ctx = Context::new();
//! irdl::register_dialects(&mut ctx, spec)?;
//!
//! // The dialect is now live: building a cmath.complex with a non-float
//! // parameter fails verification.
//! let f32 = ctx.f32_type();
//! let ok = ctx.type_attr(f32);
//! assert!(ctx.parametric_type("cmath", "complex", [ok]).is_ok());
//! let i32 = ctx.i32_type();
//! let bad = ctx.type_attr(i32);
//! assert!(ctx.parametric_type("cmath", "complex", [bad]).is_err());
//! # Ok::<(), irdl_ir::Diagnostic>(())
//! ```

pub mod artifact;
pub mod ast;
pub mod builder;
pub mod bundle;
pub mod compile;
pub mod constraint;
pub mod format;
pub mod genir;
pub mod introspect;
pub mod meta;
pub mod native;
pub mod parser;
pub mod printer;
pub mod program;
pub mod resolve;
pub mod variadic;
pub mod verifier;

pub use artifact::{DialectRecipe, OpRecipe, TypeOrAttrRecipe};
pub use ast::SourceFile;
pub use bundle::DialectBundle;
pub use compile::{
    compile_dialect, compile_dialect_collecting, compile_dialect_to_recipe,
    dialect_compile_count, register_dialects, register_dialects_with, register_recipe,
};
pub use constraint::{BindingEnv, CVal, Constraint};
pub use native::NativeRegistry;
pub use parser::parse_irdl;
