//! Generating IR *from* constraints.
//!
//! The paper argues that self-contained definitions make it "easy to
//! introspect and generate IRs" (§3). This module is the generation half: a
//! sampler that, given a compiled constraint, produces a value satisfying
//! it — and, given a compiled operation, a fully formed operation instance
//! that the synthesized verifier accepts. Used for corpus-wide smoke
//! testing (every generated instance must verify) and test-input
//! generation.

use irdl_ir::{Attribute, BlockRef, Context, OperationState, OpRef, Type};

use crate::ast::Variadicity;
use crate::constraint::{BindingEnv, CVal, Constraint, TypeClass};
use crate::verifier::CompiledOp;

/// Samples a value satisfying `constraint` under `env`, binding variables
/// along the way (`var_decls` gives each variable's declared constraint).
///
/// Returns `None` for constraints with no computable witness (negations of
/// broad constraints, native predicates whose language is unknown, ...).
pub fn sample(
    ctx: &mut Context,
    constraint: &Constraint,
    env: &mut BindingEnv,
    var_decls: &[Constraint],
) -> Option<CVal> {
    match constraint {
        Constraint::Any | Constraint::AnyType => Some(CVal::Type(ctx.i32_type())),
        Constraint::AnyAttr => Some(CVal::Attr(ctx.unit_attr())),
        Constraint::ExactType(ty) => Some(CVal::Type(*ty)),
        Constraint::ExactAttr(attr) => Some(CVal::Attr(*attr)),
        Constraint::Class(class) => {
            let ty = match class {
                TypeClass::AnyInteger => ctx.i32_type(),
                TypeClass::AnyFloat => ctx.f32_type(),
                TypeClass::Index => ctx.index_type(),
                TypeClass::AnyVector => {
                    let f32 = ctx.f32_type();
                    ctx.vector_type([4], f32)
                }
                TypeClass::AnyTensor => {
                    let f32 = ctx.f32_type();
                    ctx.tensor_type([2, 2], f32)
                }
                TypeClass::AnyMemRef => {
                    let f32 = ctx.f32_type();
                    ctx.memref_type([2], f32)
                }
                TypeClass::AnyFunction => ctx.function_type([], []),
            };
            Some(CVal::Type(ty))
        }
        Constraint::ParametricType { dialect, name, params } => {
            let (dialect, name, params) = (*dialect, *name, params.clone());
            let mut args = Vec::with_capacity(params.len());
            for pc in &params {
                let v = sample(ctx, pc, env, var_decls)?;
                args.push(v.into_attr(ctx));
            }
            ctx.parametric_type_syms(dialect, name, args).ok().map(CVal::Type)
        }
        Constraint::BaseType { dialect, name } => {
            // A bare base reference: fall back to the definition's declared
            // arity with maximally generic parameters.
            let (dialect, name) = (*dialect, *name);
            let count = ctx
                .registry()
                .type_def(dialect, name)
                .map(|info| info.param_names.len())
                .unwrap_or(0);
            let mut args = Vec::with_capacity(count);
            for _ in 0..count {
                let f32 = ctx.f32_type();
                args.push(ctx.type_attr(f32));
            }
            ctx.parametric_type_syms(dialect, name, args).ok().map(CVal::Type)
        }
        Constraint::ParametricAttr { dialect, name, params } => {
            let (dialect, name, params) = (*dialect, *name, params.clone());
            let mut args = Vec::with_capacity(params.len());
            for pc in &params {
                let v = sample(ctx, pc, env, var_decls)?;
                args.push(v.into_attr(ctx));
            }
            ctx.parametric_attr_syms(dialect, name, args).ok().map(CVal::Attr)
        }
        Constraint::BaseAttr { dialect, name } => {
            let (dialect, name) = (*dialect, *name);
            ctx.parametric_attr_syms(dialect, name, Vec::new()).ok().map(CVal::Attr)
        }
        Constraint::Int(kind) => {
            let ty = ctx.int_type_with_signedness(
                kind.width,
                if kind.unsigned {
                    irdl_ir::Signedness::Unsigned
                } else {
                    irdl_ir::Signedness::Signless
                },
            );
            Some(CVal::Attr(ctx.int_attr(1, ty)))
        }
        Constraint::IntLiteral { value, kind } => {
            let ty = ctx.int_type_with_signedness(
                kind.width,
                if kind.unsigned {
                    irdl_ir::Signedness::Unsigned
                } else {
                    irdl_ir::Signedness::Signless
                },
            );
            Some(CVal::Attr(ctx.int_attr(*value, ty)))
        }
        Constraint::FloatAttr(kind) => {
            let kind = kind.unwrap_or(irdl_ir::FloatKind::F32);
            Some(CVal::Attr(ctx.float_attr(1.0, kind)))
        }
        Constraint::StringAny => Some(CVal::Attr(ctx.string_attr("sample"))),
        Constraint::StringLiteral(s) => Some(CVal::Attr(ctx.string_attr(s.clone()))),
        Constraint::BoolAttr => Some(CVal::Attr(ctx.bool_attr(true))),
        Constraint::UnitAttr => Some(CVal::Attr(ctx.unit_attr())),
        Constraint::SymbolRefAttr => Some(CVal::Attr(ctx.symbol_ref_attr("sampled"))),
        Constraint::LocationAttr => Some(CVal::Attr(ctx.location_attr("gen.ir", 1, 1))),
        Constraint::TypeIdAttr => Some(CVal::Attr(ctx.type_id_attr("SampledType"))),
        Constraint::ArrayAny => Some(CVal::Attr(ctx.array_attr([]))),
        Constraint::ArrayOf(inner) => {
            let item = sample(ctx, inner, env, var_decls)?;
            let item = item.into_attr(ctx);
            Some(CVal::Attr(ctx.array_attr([item])))
        }
        Constraint::ArrayExact(items) => {
            let mut out = Vec::with_capacity(items.len());
            for pc in items {
                let v = sample(ctx, pc, env, var_decls)?;
                out.push(v.into_attr(ctx));
            }
            Some(CVal::Attr(ctx.array_attr(out)))
        }
        Constraint::EnumAny { dialect, name } | Constraint::EnumVariant { dialect, name, .. } => {
            let (dialect, name) = (*dialect, *name);
            let variant = match constraint {
                Constraint::EnumVariant { variant, .. } => Some(*variant),
                _ => ctx
                    .registry()
                    .enum_def(dialect, name)
                    .and_then(|e| e.variants.first().copied()),
            }?;
            Some(CVal::Attr(ctx.intern_attr(irdl_ir::AttrData::EnumValue {
                dialect,
                enum_name: name,
                variant,
            })))
        }
        Constraint::NativeParam { kind } => {
            let kind_name = ctx.symbol_str(*kind).to_string();
            let text = match kind_name.as_str() {
                "affine_map" => "(d0) -> (d0)",
                _ => "sampled",
            };
            ctx.native_attr(&kind_name, text).ok().map(CVal::Attr)
        }
        Constraint::AnyOf(choices) => {
            for choice in choices {
                let mut attempt = env.clone();
                if let Some(v) = sample(ctx, choice, &mut attempt, var_decls) {
                    // The sampled witness must actually satisfy the choice
                    // (sampling a var may have raced a binding).
                    if crate::constraint::eval(ctx, choice, v, &mut attempt, var_decls).is_ok() {
                        *env = attempt;
                        return Some(v);
                    }
                }
            }
            None
        }
        Constraint::And(parts) => {
            // Sample the most constrained part first (exact constraints),
            // then check the rest.
            let witness_source = parts
                .iter()
                .max_by_key(|p| constraint_specificity(p))?;
            let v = sample(ctx, witness_source, env, var_decls)?;
            let mut attempt = env.clone();
            for part in parts {
                crate::constraint::eval(ctx, part, v, &mut attempt, var_decls).ok()?;
            }
            *env = attempt;
            Some(v)
        }
        Constraint::Not(inner) => {
            // Try a few canonical witnesses and keep one the inner
            // constraint rejects.
            let f64 = ctx.f64_type();
            let i64 = ctx.i64_type();
            let one = ctx.i64_attr(1);
            let s = ctx.string_attr("not");
            let candidates =
                [CVal::Type(f64), CVal::Type(i64), CVal::Attr(one), CVal::Attr(s)];
            candidates.into_iter().find(|v| {
                let mut scratch = env.clone();
                crate::constraint::eval(ctx, inner, *v, &mut scratch, var_decls).is_err()
            })
        }
        Constraint::Var(i) => {
            if let Some(bound) = env.binding(*i) {
                return Some(bound);
            }
            let decl = var_decls.get(*i as usize).cloned().unwrap_or(Constraint::Any);
            let v = sample(ctx, &decl, env, var_decls)?;
            env.bind(*i, v);
            Some(v)
        }
        Constraint::Native { .. } => {
            // The predicate's language is unknown; try the stock witnesses
            // used by the corpus categories.
            let i64 = ctx.i64_type();
            let one = ctx.int_attr(1, i64);
            let arr = ctx.array_attr([one]);
            let s = ctx.string_attr("body");
            let mut scratch = env.clone();
            [CVal::Attr(one), CVal::Attr(arr), CVal::Attr(s)]
                .into_iter()
                .find(|v| {
                    crate::constraint::eval(ctx, constraint, *v, &mut scratch, var_decls)
                        .is_ok()
                })
        }
    }
}

fn constraint_specificity(c: &Constraint) -> u32 {
    match c {
        Constraint::ExactType(_)
        | Constraint::ExactAttr(_)
        | Constraint::IntLiteral { .. }
        | Constraint::StringLiteral(_)
        | Constraint::EnumVariant { .. } => 4,
        Constraint::ParametricType { .. } | Constraint::ParametricAttr { .. } => 3,
        Constraint::Int(_)
        | Constraint::FloatAttr(_)
        | Constraint::Class(_)
        | Constraint::BaseType { .. }
        | Constraint::BaseAttr { .. }
        | Constraint::ArrayOf(_)
        | Constraint::ArrayExact(_) => 2,
        Constraint::Native { .. } | Constraint::Not(_) => 0,
        _ => 1,
    }
}

/// The outcome of instantiating one operation definition.
#[derive(Debug)]
pub enum Instantiation {
    /// A complete, inserted operation.
    Built(OpRef),
    /// The definition could not be instantiated (with the reason).
    Skipped(String),
}

/// Builds a best-effort instance of `op` at the end of `block`, creating
/// source operations for every operand. Segment-size attributes are added
/// when more than one variadic definition is present.
///
/// Required region terminators are created *bare* (no operands or
/// attributes of their own); run the enclosing module through
/// [`irdl_ir::verify::verify_op_structural`] rather than the hook-running
/// verifier when terminators have required operands.
pub fn instantiate_op(
    ctx: &mut Context,
    compiled: &CompiledOp,
    block: BlockRef,
) -> Instantiation {
    let mut env = BindingEnv::new(compiled.var_decls.len());

    // --- operand types ----------------------------------------------------
    let mut operand_types: Vec<Type> = Vec::new();
    let mut operand_sizes: Vec<i64> = Vec::new();
    for def in &compiled.operands {
        // One value per definition, variadic or not; the segment-sizes
        // attribute below records the all-ones layout when needed.
        let count = 1;
        operand_sizes.push(count);
        for _ in 0..count {
            match sample(ctx, &def.constraint, &mut env, &compiled.var_decls) {
                Some(CVal::Type(ty)) => operand_types.push(ty),
                _ => {
                    return Instantiation::Skipped(format!(
                        "cannot sample operand `{}`",
                        def.name
                    ))
                }
            }
        }
    }

    // --- result types -------------------------------------------------------
    let mut result_types: Vec<Type> = Vec::new();
    let mut result_sizes: Vec<i64> = Vec::new();
    for def in &compiled.results {
        result_sizes.push(1);
        match sample(ctx, &def.constraint, &mut env, &compiled.var_decls) {
            Some(CVal::Type(ty)) => result_types.push(ty),
            _ => {
                return Instantiation::Skipped(format!("cannot sample result `{}`", def.name))
            }
        }
    }

    // --- attributes ------------------------------------------------------------
    let mut attributes: Vec<(irdl_ir::Symbol, Attribute)> = Vec::new();
    for (key, constraint) in &compiled.attributes {
        match sample(ctx, constraint, &mut env, &compiled.var_decls) {
            Some(v) => {
                let attr = v.into_attr(ctx);
                attributes.push((*key, attr));
            }
            None => {
                let key = ctx.symbol_str(*key).to_string();
                return Instantiation::Skipped(format!("cannot sample attribute `{key}`"));
            }
        }
    }
    let multi_variadic = |defs: &[crate::verifier::CompiledArg]| {
        defs.iter().filter(|d| !matches!(d.variadicity, Variadicity::Single)).count() > 1
    };
    if multi_variadic(&compiled.operands) {
        let key = ctx.symbol(crate::variadic::OPERAND_SEGMENT_ATTR);
        let items: Vec<Attribute> =
            operand_sizes.iter().map(|s| ctx.i64_attr(*s)).collect();
        let sizes = ctx.array_attr(items);
        attributes.push((key, sizes));
    }
    if multi_variadic(&compiled.results) {
        let key = ctx.symbol(crate::variadic::RESULT_SEGMENT_ATTR);
        let items: Vec<Attribute> = result_sizes.iter().map(|s| ctx.i64_attr(*s)).collect();
        let sizes = ctx.array_attr(items);
        attributes.push((key, sizes));
    }

    // --- regions -----------------------------------------------------------------
    let mut regions = Vec::new();
    for def in &compiled.regions {
        let mut arg_types = Vec::new();
        if let Some(args) = &def.args {
            for arg in args {
                if !matches!(arg.variadicity, Variadicity::Single) {
                    continue;
                }
                match sample(ctx, &arg.constraint, &mut env, &compiled.var_decls) {
                    Some(CVal::Type(ty)) => arg_types.push(ty),
                    _ => {
                        return Instantiation::Skipped(format!(
                            "cannot sample region argument `{}`",
                            arg.name
                        ))
                    }
                }
            }
        }
        let (region, entry) = ctx.create_region_with_entry(arg_types);
        if let Some(term) = def.terminator {
            let term_op = ctx.create_op(OperationState::new(term));
            ctx.append_op(entry, term_op);
        }
        regions.push(region);
    }

    // --- successors -----------------------------------------------------------------
    if compiled.successors.unwrap_or(0) > 0 {
        // Terminators with successors need surrounding CFG structure;
        // out of scope for block-local instantiation.
        return Instantiation::Skipped("terminator with successors".to_string());
    }

    // --- materialize -----------------------------------------------------------------
    let src = ctx.op_name("genir", "source");
    let mut operands = Vec::with_capacity(operand_types.len());
    for ty in operand_types {
        let def = ctx.create_op(OperationState::new(src).add_result_types([ty]));
        ctx.append_op(block, def);
        operands.push(def.result(ctx, 0));
    }
    let state = OperationState {
        name: compiled.name,
        operands: operands.into(),
        result_types: result_types.into(),
        attributes: attributes.into(),
        successors: irdl_ir::SuccessorList::new(),
        regions: regions.into(),
    };
    let op = ctx.create_op(state);
    ctx.append_op(block, op);
    Instantiation::Built(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_satisfies_what_it_samples() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let f64 = ctx.f64_type();
        let kind = crate::ast::IntKind { width: 32, unsigned: false };
        let constraints = vec![
            Constraint::AnyType,
            Constraint::ExactType(f32),
            Constraint::AnyOf(vec![Constraint::ExactType(f64), Constraint::ExactType(f32)]),
            Constraint::Int(kind),
            Constraint::And(vec![
                Constraint::Int(kind),
                Constraint::Not(Box::new(Constraint::IntLiteral { value: 0, kind })),
            ]),
            Constraint::ArrayOf(Box::new(Constraint::Int(kind))),
            Constraint::StringLiteral("exact".to_string()),
            Constraint::Class(TypeClass::AnyVector),
        ];
        for c in &constraints {
            let mut env = BindingEnv::new(0);
            let v = sample(&mut ctx, c, &mut env, &[])
                .unwrap_or_else(|| panic!("no sample for {c:?}"));
            let mut env = BindingEnv::new(0);
            crate::constraint::eval(&ctx, c, v, &mut env, &[])
                .unwrap_or_else(|e| panic!("sample violates {c:?}: {e}"));
        }
    }

    #[test]
    fn sampled_vars_are_consistent() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let decls = vec![Constraint::ExactType(f32)];
        let mut env = BindingEnv::new(1);
        let a = sample(&mut ctx, &Constraint::Var(0), &mut env, &decls).unwrap();
        let b = sample(&mut ctx, &Constraint::Var(0), &mut env, &decls).unwrap();
        assert_eq!(a, b, "a variable samples to one value");
    }
}
