//! Soundness tests for the verifier fast path's verdict memoization.
//!
//! The cache in [`irdl_ir::Context`] may only hold verdicts of *pure*
//! subprograms — constraints whose outcome depends on nothing but the
//! (uniqued) value itself. These tests pin the two ways that could go
//! wrong: caching a variable-bearing constraint across binding
//! environments, and key collisions between programs or values.

use std::sync::Arc;

use irdl::ast::Variadicity;
use irdl::constraint::Constraint;
use irdl::program::{EvalScratch, OpProgram, ProgramOpVerifier};
use irdl::verifier::{CompiledArg, CompiledOp};
use irdl_ir::{Context, OpRef, OperationState, Type};

fn arg(name: &str, constraint: Constraint) -> CompiledArg {
    CompiledArg { name: name.into(), constraint, variadicity: Variadicity::Single }
}

fn one_operand_op(ctx: &mut Context, constraint: Constraint) -> CompiledOp {
    CompiledOp {
        name: ctx.op_name("t", "op"),
        var_names: vec![],
        var_decls: vec![],
        operands: vec![arg("x", constraint)],
        results: vec![],
        attributes: vec![],
        regions: vec![],
        successors: None,
        native_verifier: None,
    }
}

/// Creates a detached `t.op` whose operands have the given types.
fn op_with_operands(ctx: &mut Context, types: &[Type]) -> OpRef {
    let def_name = ctx.op_name("t", "def");
    let operands: Vec<irdl_ir::Value> = types
        .iter()
        .map(|&ty| {
            let def = ctx.create_op(OperationState::new(def_name).add_result_types([ty]));
            def.result(ctx, 0)
        })
        .collect();
    let name = ctx.op_name("t", "op");
    ctx.create_op(OperationState::new(name).add_operands(operands))
}

/// Variable-bearing constraints must never be memoized: the same
/// `AnyOf`-with-variable must be free to bind differently on different
/// operations.
#[test]
fn variable_bearing_constraints_are_never_cached() {
    let mut ctx = Context::new();
    let f32 = ctx.f32_type();
    let f64 = ctx.f64_type();
    let i32 = ctx.i32_type();

    let choice = Constraint::AnyOf(vec![Constraint::Var(0), Constraint::ExactType(i32)]);
    let compiled = CompiledOp {
        name: ctx.op_name("t", "op"),
        var_names: vec!["T".into()],
        var_decls: vec![Constraint::AnyType],
        operands: vec![arg("lhs", choice.clone()), arg("rhs", choice)],
        results: vec![],
        attributes: vec![],
        regions: vec![],
        successors: None,
        native_verifier: None,
    };
    let program = OpProgram::build(&mut ctx, &compiled);
    assert_eq!(
        program.num_cache_slots(),
        0,
        "a subprogram containing Var must not get a cache slot"
    );

    let mut scratch = EvalScratch::new();
    // T binds to f32 on the first op and to f64 on the second; a cached
    // verdict from the first environment would corrupt the second.
    let both_f32 = op_with_operands(&mut ctx, &[f32, f32]);
    let both_f64 = op_with_operands(&mut ctx, &[f64, f64]);
    let mixed = op_with_operands(&mut ctx, &[f32, f64]);
    assert!(program.check(&ctx, both_f32, &mut scratch));
    assert!(program.check(&ctx, both_f64, &mut scratch));
    assert!(!program.check(&ctx, mixed, &mut scratch), "T must be equal at every use");
    assert_eq!(ctx.verdict_cache_len(), 0, "nothing here is pure enough to cache");
}

/// Pure verdicts are keyed per `(program, value)`: a verdict cached while
/// an op *failed* must not leak a stale result into a later passing op.
#[test]
fn failing_op_does_not_poison_passing_op() {
    let mut ctx = Context::new();
    let f32 = ctx.f32_type();
    let f64 = ctx.f64_type();
    let i32 = ctx.i32_type();
    let cmath = ctx.symbol("cmath");
    let complex = ctx.symbol("complex");
    let mk_complex = |ctx: &mut Context, elem: Type| {
        let a = ctx.type_attr(elem);
        ctx.parametric_type_syms(cmath, complex, vec![a]).unwrap()
    };
    let complex_i32 = mk_complex(&mut ctx, i32);
    let complex_f32 = mk_complex(&mut ctx, f32);

    let elem = Constraint::ParametricType {
        dialect: cmath,
        name: complex,
        params: vec![Constraint::AnyOf(vec![
            Constraint::ExactType(f32),
            Constraint::ExactType(f64),
        ])],
    };
    let compiled = one_operand_op(&mut ctx, elem);
    let program = OpProgram::build(&mut ctx, &compiled);
    assert!(program.num_cache_slots() >= 1, "the parametric pattern is pure");

    let mut scratch = EvalScratch::new();
    let bad = op_with_operands(&mut ctx, &[complex_i32]);
    assert!(!program.check(&ctx, bad, &mut scratch));
    assert!(ctx.verdict_cache_len() > 0, "the failing verdict itself is memoized");

    // The passing op's operand is a *different* uniqued value, hence a
    // different key: the cached `false` must not apply to it.
    let good = op_with_operands(&mut ctx, &[complex_f32]);
    assert!(program.check(&ctx, good, &mut scratch));

    // Re-verifying serves the pure verdict from the cache.
    let (hits_before, _) = ctx.verdict_cache_stats();
    assert!(program.check(&ctx, good, &mut scratch));
    let (hits_after, _) = ctx.verdict_cache_stats();
    assert!(hits_after > hits_before, "second verification must hit the cache");
}

/// Two programs with structurally different constraints must own disjoint
/// key domains, even when checking the same uniqued value.
#[test]
fn distinct_programs_never_share_cache_keys() {
    let mut ctx = Context::new();
    let f32 = ctx.f32_type();
    let f64 = ctx.f64_type();

    // Both programs cache a verdict for the *same* CVal (f64). If their
    // domains overlapped, program B would read A's `false`.
    let compiled_a = one_operand_op(&mut ctx, Constraint::And(vec![Constraint::ExactType(f32)]));
    let program_a = OpProgram::build(&mut ctx, &compiled_a);
    let compiled_b = one_operand_op(&mut ctx, Constraint::And(vec![Constraint::ExactType(f64)]));
    let program_b = OpProgram::build(&mut ctx, &compiled_b);

    let mut scratch = EvalScratch::new();
    let op = op_with_operands(&mut ctx, &[f64]);
    assert!(!program_a.check(&ctx, op, &mut scratch));
    assert!(program_b.check(&ctx, op, &mut scratch));
}

/// The registered verifier renders its diagnostics lazily by re-running
/// the tree interpreter — the message must be exactly the tree's.
#[test]
fn lazy_diagnostics_match_the_tree_interpreter() {
    use irdl_ir::OpVerifier;

    let mut ctx = Context::new();
    let f32 = ctx.f32_type();
    let i32 = ctx.i32_type();
    let compiled = Arc::new(one_operand_op(&mut ctx, Constraint::ExactType(f32)));
    let program = OpProgram::build(&mut ctx, &compiled);
    let verifier = ProgramOpVerifier::new(compiled.clone(), program);

    let good = op_with_operands(&mut ctx, &[f32]);
    assert!(verifier.verify(&ctx, good).is_ok());

    let bad = op_with_operands(&mut ctx, &[i32]);
    let fast = verifier.verify(&ctx, bad).unwrap_err();
    let tree = compiled.verify(&ctx, bad).unwrap_err();
    assert_eq!(fast.message(), tree.message());
}
