//! Golden-message tests for *verifier rejection* diagnostics.
//!
//! The compile-error catalog lives in `diagnostics.rs`; this file pins the
//! other half of the error surface: well-formed specifications rejecting
//! malformed IR. The fuzzer leans on these messages being stable — the
//! differential oracles compare rendered diagnostics byte-for-byte across
//! fast paths, so a message that drifts with hash order or pointer values
//! would show up as a spurious divergence.

use irdl_ir::parse::parse_module;
use irdl_ir::verify::ModuleVerifier;
use irdl_ir::Context;

const SPEC: &str = r#"Dialect d {
  Operation pick {
    Operands (cond: !i1, value: !i32)
    Results (out: !i32)
  }
  Operation tagged {
    Attributes (flag: bool_attr)
  }
  Operation gather {
    Operands (starts: Variadic<!index>, ends: Variadic<!index>)
  }
  Operation wrap {
    Region body { }
  }
}"#;

/// Compiles the spec, parses `text`, and returns the rendered diagnostics
/// of the full (hook-running) verifier, which must reject.
fn verify_err(text: &str) -> String {
    let mut ctx = Context::new();
    irdl::register_dialects(&mut ctx, SPEC).expect("spec compiles");
    let module = parse_module(&mut ctx, text)
        .unwrap_or_else(|e| panic!("parse failed: {}", e.render(text)));
    let errors = ModuleVerifier::new()
        .verify(&ctx, module)
        .expect_err("verifier should reject");
    errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
}

#[test]
fn operand_type_mismatch_names_operand_type_and_op() {
    let msg = verify_err(
        r#""builtin.module"() ({
  %0 = "fuzz.src"() : () -> f32
  %1 = "fuzz.src"() : () -> i32
  %2 = "d.pick"(%0, %1) : (f32, i32) -> i32
}) : () -> ()"#,
    );
    assert!(msg.contains("operand `cond` is invalid"), "{msg}");
    assert!(msg.contains("expected type i1, got f32"), "{msg}");
    assert!(msg.contains("in operation `d.pick`"), "{msg}");
}

#[test]
fn result_type_mismatch_names_result() {
    let msg = verify_err(
        r#""builtin.module"() ({
  %0 = "fuzz.src"() : () -> i1
  %1 = "fuzz.src"() : () -> i32
  %2 = "d.pick"(%0, %1) : (i1, i32) -> f64
}) : () -> ()"#,
    );
    assert!(msg.contains("result `out` is invalid"), "{msg}");
    assert!(msg.contains("expected type i32, got f64"), "{msg}");
    assert!(msg.contains("in operation `d.pick`"), "{msg}");
}

#[test]
fn missing_attribute_is_named() {
    let msg = verify_err(
        r#""builtin.module"() ({
  "d.tagged"() : () -> ()
}) : () -> ()"#,
    );
    assert!(msg.contains("missing required attribute `flag`"), "{msg}");
    assert!(msg.contains("in operation `d.tagged`"), "{msg}");
}

#[test]
fn poisoned_attribute_is_named() {
    let msg = verify_err(
        r#""builtin.module"() ({
  "d.tagged"() {flag = "yes"} : () -> ()
}) : () -> ()"#,
    );
    assert!(msg.contains("attribute `flag` is invalid"), "{msg}");
    assert!(msg.contains("in operation `d.tagged`"), "{msg}");
}

#[test]
fn ambiguous_variadic_segments_are_rejected() {
    // Two variadic groups and no segment-sizes attribute: the operand
    // layout is ambiguous and must be reported as a count mismatch.
    let msg = verify_err(
        r#""builtin.module"() ({
  %0 = "fuzz.src"() : () -> index
  "d.gather"(%0) : (index) -> ()
}) : () -> ()"#,
    );
    assert!(msg.contains("operand count mismatch"), "{msg}");
    assert!(msg.contains("in operation `d.gather`"), "{msg}");
}

#[test]
fn region_count_mismatch_is_reported() {
    let msg = verify_err(
        r#""builtin.module"() ({
  "d.wrap"() : () -> ()
}) : () -> ()"#,
    );
    assert!(msg.contains("expected 1 region(s), got 0"), "{msg}");
    assert!(msg.contains("in operation `d.wrap`"), "{msg}");
}

#[test]
fn undeclared_successors_are_rejected() {
    // `d.pick` declares no successors; handing it one is a structural
    // error caught before any constraint runs.
    let mut ctx = Context::new();
    irdl::register_dialects(&mut ctx, SPEC).expect("spec compiles");
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let region = ctx.create_region();
    let target = ctx.create_block([]);
    ctx.append_block(region, target);
    let i1 = ctx.i1_type();
    let i32 = ctx.i32_type();
    let src = ctx.op_name("fuzz", "src");
    let a = ctx.create_op(irdl_ir::OperationState::new(src).add_result_types([i1]));
    let b = ctx.create_op(irdl_ir::OperationState::new(src).add_result_types([i32]));
    ctx.append_op(block, a);
    ctx.append_op(block, b);
    let pick = ctx.op_name("d", "pick");
    let op = ctx.create_op(
        irdl_ir::OperationState::new(pick)
            .add_operands([a.result(&ctx, 0), b.result(&ctx, 0)])
            .add_result_types([i32])
            .add_successors([target]),
    );
    ctx.append_op(block, op);
    let errors =
        ModuleVerifier::new().verify(&ctx, module).expect_err("verifier should reject");
    let msg = errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
    assert!(msg.contains("non-terminator operation cannot have successors"), "{msg}");
}

#[test]
fn unregistered_dialect_rejected_in_strict_mode() {
    let mut ctx = Context::new();
    irdl::register_dialects(&mut ctx, SPEC).expect("spec compiles");
    let module = parse_module(
        &mut ctx,
        r#""builtin.module"() ({
  "ghost.op"() : () -> ()
}) : () -> ()"#,
    )
    .expect("parses");
    ctx.set_allow_unregistered(false);
    let errors =
        ModuleVerifier::new().verify(&ctx, module).expect_err("verifier should reject");
    let msg = errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n");
    assert!(msg.contains("unregistered dialect"), "{msg}");
}

#[test]
fn parse_rejections_carry_spans() {
    let mut ctx = Context::new();
    let bad = "\"builtin.module\"() ({\n  %0 = \"d.pick\"(%missing) : (i1) -> i32\n}) : () -> ()";
    let err = parse_module(&mut ctx, bad).expect_err("parse should fail");
    let rendered = err.render(bad);
    assert!(rendered.contains("error at 2:"), "span should point at line 2: {rendered}");
    assert!(rendered.contains("%missing"), "should quote the offending line: {rendered}");
}
