//! End-to-end tests: IRDL specification → registered dialect → textual IR
//! parsing, printing, and verification.
//!
//! These tests exercise the paper's running example (Listings 1-3): the
//! `cmath` dialect with its declarative formats, and IR using it.

use irdl_ir::parse::parse_module;
use irdl_ir::print::{op_to_string, op_to_string_generic};
use irdl_ir::verify::verify_op;
use irdl_ir::{Context, OperationState};

/// Listing 3: the self-contained IRDL specification of cmath.
const CMATH: &str = r#"
Dialect cmath {
  Summary "Complex arithmetic"
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  Operation mul {
    ConstraintVar (!T: !complex<!FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }

  Operation create_constant {
    Results (res: !complex<!f32>)
    Attributes (re: #f32_attr, im: #f32_attr)
    Summary "Create a constant complex number"
  }

  Operation log {
    Operands (c: !complex<!f32>, base: Optional<!f32>)
    Results (res: !complex<!f32>)
  }
}
"#;

fn cmath_context() -> Context {
    let mut ctx = Context::new();
    irdl::register_dialects(&mut ctx, CMATH).expect("cmath compiles");
    ctx
}

#[test]
fn register_cmath_dialect() {
    let ctx = cmath_context();
    let reports = irdl::introspect::report(&ctx);
    let cmath = reports.iter().find(|d| d.name == "cmath").unwrap();
    assert_eq!(cmath.ops.len(), 4);
    assert_eq!(cmath.types.len(), 1);
    assert_eq!(cmath.summary, "Complex arithmetic");
}

#[test]
fn complex_type_verifier_from_spec() {
    let mut ctx = cmath_context();
    let f32 = ctx.f32_type();
    let i32 = ctx.i32_type();
    let ok = ctx.type_attr(f32);
    assert!(ctx.parametric_type("cmath", "complex", [ok]).is_ok());
    let bad = ctx.type_attr(i32);
    let err = ctx.parametric_type("cmath", "complex", [bad]).unwrap_err();
    assert!(err.to_string().contains("elementType"), "{err}");
    // Wrong arity.
    assert!(ctx.parametric_type("cmath", "complex", [ok, ok]).is_err());
}

/// Builds the `conorm` computation of Listing 1 programmatically and
/// verifies it against the registered dialect.
#[test]
fn verify_conorm_module() {
    let mut ctx = cmath_context();
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex_f32 = ctx.parametric_type("cmath", "complex", [f32a]).unwrap();

    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg_name = ctx.op_name("test", "arg");
    let p = ctx.create_op(OperationState::new(arg_name).add_result_types([complex_f32]));
    let q = ctx.create_op(OperationState::new(arg_name).add_result_types([complex_f32]));
    ctx.append_op(block, p);
    ctx.append_op(block, q);
    let vp = p.result(&ctx, 0);
    let vq = q.result(&ctx, 0);

    let mul_name = ctx.op_name("cmath", "mul");
    let mul = ctx.create_op(
        OperationState::new(mul_name).add_operands([vp, vq]).add_result_types([complex_f32]),
    );
    ctx.append_op(block, mul);
    let vm = mul.result(&ctx, 0);
    let norm_name = ctx.op_name("cmath", "norm");
    let norm = ctx.create_op(
        OperationState::new(norm_name).add_operands([vm]).add_result_types([f32]),
    );
    ctx.append_op(block, norm);

    verify_op(&ctx, module).expect("conorm verifies");

    // Break it: norm result type must equal the complex element type.
    let f64 = ctx.f64_type();
    let bad_norm = ctx.create_op(
        OperationState::new(norm_name).add_operands([vm]).add_result_types([f64]),
    );
    ctx.append_op(block, bad_norm);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(errs.iter().any(|d| d.to_string().contains("res")), "{errs:?}");
}

#[test]
fn custom_format_prints_and_parses() {
    let mut ctx = cmath_context();
    let src = r#"
        %p = "test.arg"() : () -> !cmath.complex<f32>
        %q = "test.arg"() : () -> !cmath.complex<f32>
        %m = cmath.mul %p, %q : f32
        %n = cmath.norm %m : f32
    "#;
    let module = parse_module(&mut ctx, src).expect("custom formats parse");
    verify_op(&ctx, module).expect("parsed module verifies");
    let block = ctx.module_block(module);
    let mul = block.ops(&ctx)[2];
    // Result type was inferred from `: f32` through T = complex<f32>.
    assert_eq!(mul.result_types(&ctx)[0].display(&ctx), "!cmath.complex<f32>");
    let norm = block.ops(&ctx)[3];
    assert_eq!(norm.result_types(&ctx)[0].display(&ctx), "f32");

    // Printing uses the declarative format again.
    let printed = op_to_string(&ctx, mul);
    assert_eq!(printed, "%0 = cmath.mul %1, %2 : f32");

    // Full module round-trip: print then re-parse then re-verify.
    let text = op_to_string(&ctx, module);
    let mut ctx2 = cmath_context();
    let module2 = parse_module(&mut ctx2, &text).expect("printed module re-parses");
    verify_op(&ctx2, module2).expect("round-tripped module verifies");
    assert_eq!(op_to_string(&ctx2, module2), text, "printing is a fixpoint");
}

#[test]
fn format_type_inference_rejects_inconsistency() {
    let mut ctx = cmath_context();
    // %p is complex<f32> but the format claims f64.
    let src = r#"
        %p = "test.arg"() : () -> !cmath.complex<f32>
        %q = "test.arg"() : () -> !cmath.complex<f32>
        %m = cmath.mul %p, %q : f64
    "#;
    let err = parse_module(&mut ctx, src).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("f64") || msg.contains("bound"), "{msg}");
}

#[test]
fn generic_form_always_available() {
    let mut ctx = cmath_context();
    let src = r#"
        %p = "test.arg"() : () -> !cmath.complex<f32>
        %q = "test.arg"() : () -> !cmath.complex<f32>
        %m = "cmath.mul"(%p, %q) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
    "#;
    let module = parse_module(&mut ctx, src).unwrap();
    verify_op(&ctx, module).unwrap();
    let block = ctx.module_block(module);
    let mul = block.ops(&ctx)[2];
    let generic = op_to_string_generic(&ctx, mul);
    assert!(generic.starts_with("%0 = \"cmath.mul\"("), "{generic}");
}

#[test]
fn attributes_are_required_and_constrained() {
    let mut ctx = cmath_context();
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex_f32 = ctx.parametric_type("cmath", "complex", [f32a]).unwrap();
    let name = ctx.op_name("cmath", "create_constant");
    let re = ctx.symbol("re");
    let im = ctx.symbol("im");
    let one = ctx.f32_attr(1.0);
    let two = ctx.f32_attr(2.0);

    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let good = ctx.create_op(
        OperationState::new(name)
            .add_result_types([complex_f32])
            .add_attribute(re, one)
            .add_attribute(im, two),
    );
    ctx.append_op(block, good);
    verify_op(&ctx, module).expect("constant with both attrs verifies");

    // Missing `im`.
    let missing = ctx.create_op(
        OperationState::new(name).add_result_types([complex_f32]).add_attribute(re, one),
    );
    ctx.append_op(block, missing);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(errs.iter().any(|d| d.to_string().contains("im")), "{errs:?}");
    ctx.erase_op(missing);

    // Wrong kind: f64 float where f32 is required.
    let wrong = ctx.float_attr(1.0, irdl_ir::FloatKind::F64);
    let bad = ctx.create_op(
        OperationState::new(name)
            .add_result_types([complex_f32])
            .add_attribute(re, wrong)
            .add_attribute(im, two),
    );
    ctx.append_op(block, bad);
    assert!(verify_op(&ctx, module).is_err());
}

#[test]
fn optional_operand_matches_one_or_two() {
    let mut ctx = cmath_context();
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex_f32 = ctx.parametric_type("cmath", "complex", [f32a]).unwrap();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg = ctx.op_name("test", "arg");
    let c = ctx.create_op(OperationState::new(arg).add_result_types([complex_f32]));
    let b = ctx.create_op(OperationState::new(arg).add_result_types([f32]));
    ctx.append_op(block, c);
    ctx.append_op(block, b);
    let vc = c.result(&ctx, 0);
    let vb = b.result(&ctx, 0);

    let log = ctx.op_name("cmath", "log");
    // One operand (no base).
    let one = ctx.create_op(
        OperationState::new(log).add_operands([vc]).add_result_types([complex_f32]),
    );
    ctx.append_op(block, one);
    // Two operands (with base).
    let two = ctx.create_op(
        OperationState::new(log).add_operands([vc, vb]).add_result_types([complex_f32]),
    );
    ctx.append_op(block, two);
    verify_op(&ctx, module).expect("both arities verify");

    // Three operands: too many.
    let three = ctx.create_op(
        OperationState::new(log).add_operands([vc, vb, vb]).add_result_types([complex_f32]),
    );
    ctx.append_op(block, three);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(errs.iter().any(|d| d.to_string().contains("count")), "{errs:?}");
}

/// Listing 7: regions with argument constraints and terminators.
#[test]
fn region_constraints_from_spec() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect loops {
            Operation range_loop_terminator { Successors () }
            Operation range_loop {
                Operands (lower_bound: !i32, upper_bound: !i32, step: !i32)
                Region body {
                    Arguments (induction_variable: !i32)
                    Terminator range_loop_terminator
                }
            }
        }"#,
    )
    .unwrap();

    let i32 = ctx.i32_type();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg = ctx.op_name("test", "arg");
    let bound = ctx.create_op(OperationState::new(arg).add_result_types([i32]));
    ctx.append_op(block, bound);
    let vb = bound.result(&ctx, 0);

    // Correct: single block, i32 argument, proper terminator.
    let (region, body) = ctx.create_region_with_entry([i32]);
    let term_name = ctx.op_name("loops", "range_loop_terminator");
    let term = ctx.create_op(OperationState::new(term_name));
    ctx.append_op(body, term);
    let loop_name = ctx.op_name("loops", "range_loop");
    let good = ctx.create_op(
        OperationState::new(loop_name).add_operands([vb, vb, vb]).add_regions([region]),
    );
    ctx.append_op(block, good);
    verify_op(&ctx, module).expect("well-formed loop verifies");

    // Wrong terminator.
    let (region2, body2) = ctx.create_region_with_entry([i32]);
    let other = ctx.op_name("test", "done");
    let bad_term = ctx.create_op(OperationState::new(other));
    ctx.append_op(body2, bad_term);
    let bad = ctx.create_op(
        OperationState::new(loop_name).add_operands([vb, vb, vb]).add_regions([region2]),
    );
    ctx.append_op(block, bad);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(
        errs.iter().any(|d| d.to_string().contains("range_loop_terminator")),
        "{errs:?}"
    );
    ctx.erase_op(bad);

    // Wrong region argument type.
    let f32 = ctx.f32_type();
    let (region3, body3) = ctx.create_region_with_entry([f32]);
    let term3 = ctx.create_op(OperationState::new(term_name));
    ctx.append_op(body3, term3);
    let bad_arg = ctx.create_op(
        OperationState::new(loop_name).add_operands([vb, vb, vb]).add_regions([region3]),
    );
    ctx.append_op(block, bad_arg);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(
        errs.iter().any(|d| d.to_string().contains("induction_variable")),
        "{errs:?}"
    );
}

/// Listing 8: successors make an operation a terminator with a fixed count.
#[test]
fn successor_constraints_from_spec() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect cf {
            Operation conditional_branch {
                Operands (condition: !i1)
                Successors (next_bb_true, next_bb_false)
            }
        }"#,
    )
    .unwrap();
    let i1 = ctx.i1_type();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let region = ctx.create_region();
    let entry = ctx.create_block([]);
    let t = ctx.create_block([]);
    let f = ctx.create_block([]);
    for b in [entry, t, f] {
        ctx.append_block(region, b);
    }
    let arg = ctx.op_name("test", "arg");
    let cond = ctx.create_op(OperationState::new(arg).add_result_types([i1]));
    ctx.append_op(entry, cond);
    let vcond = cond.result(&ctx, 0);
    let br = ctx.op_name("cf", "conditional_branch");
    let good = ctx.create_op(
        OperationState::new(br).add_operands([vcond]).add_successors([t, f]),
    );
    ctx.append_op(entry, good);
    // Terminate t and f too.
    let done = ctx.op_name("cf", "conditional_branch");
    for b in [t, f] {
        let c2 = ctx.create_op(OperationState::new(arg).add_result_types([i1]));
        ctx.append_op(b, c2);
        let v2 = c2.result(&ctx, 0);
        let term = ctx.create_op(
            OperationState::new(done).add_operands([v2]).add_successors([t, f]),
        );
        ctx.append_op(b, term);
    }
    let holder = ctx.op_name("test", "holder");
    let h = ctx.create_op(OperationState::new(holder).add_regions([region]));
    ctx.append_op(block, h);
    verify_op(&ctx, module).expect("two successors verify");

    // One successor only: count mismatch.
    let region_b = ctx.create_region();
    let e2 = ctx.create_block([]);
    let t2 = ctx.create_block([]);
    ctx.append_block(region_b, e2);
    ctx.append_block(region_b, t2);
    let c3 = ctx.create_op(OperationState::new(arg).add_result_types([i1]));
    ctx.append_op(e2, c3);
    let v3 = c3.result(&ctx, 0);
    let bad = ctx.create_op(OperationState::new(br).add_operands([v3]).add_successors([t2]));
    ctx.append_op(e2, bad);
    let c4 = ctx.create_op(OperationState::new(arg).add_result_types([i1]));
    ctx.append_op(t2, c4);
    let v4 = c4.result(&ctx, 0);
    let term2 = ctx.create_op(
        OperationState::new(br).add_operands([v4]).add_successors([t2, t2]),
    );
    ctx.append_op(t2, term2);
    let h2 = ctx.create_op(OperationState::new(holder).add_regions([region_b]));
    ctx.append_op(block, h2);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(
        errs.iter().any(|d| d.to_string().contains("successor")),
        "{errs:?}"
    );
}

/// Listing 9: enums as type parameters.
#[test]
fn enum_parameters_from_spec() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect ints {
            Enum signedness { Signless, Signed, Unsigned }
            Type integer {
                Parameters (bitwidth: uint32_t, signed: signedness)
            }
            Alias !signed_integer = !integer<uint32_t, signedness.Signed>
        }"#,
    )
    .unwrap();
    let ui32 = ctx.int_type_with_signedness(32, irdl_ir::Signedness::Unsigned);
    let width = ctx.int_attr(32, ui32);
    let signed = ctx.enum_attr("ints", "signedness", "Signed");
    assert!(ctx.parametric_type("ints", "integer", [width, signed]).is_ok());
    // A string is not a signedness.
    let not_enum = ctx.string_attr("Signed");
    let err = ctx.parametric_type("ints", "integer", [width, not_enum]).unwrap_err();
    assert!(err.to_string().contains("signed"), "{err}");
}

/// Listing 10: native constraints and native op verifiers (IRDL-Rust).
#[test]
fn native_constraints_from_spec() {
    use std::sync::Arc;
    let mut ctx = Context::new();
    let mut natives = irdl::NativeRegistry::with_std();
    natives.register_op_verifier(
        "append_vector_sizes",
        Arc::new(|ctx: &irdl_ir::Context, op: irdl_ir::OpRef| {
            // res.size == lhs.size + rhs.size
            let size_of = |ctx: &irdl_ir::Context, ty: irdl_ir::Type| -> i128 {
                ty.params(ctx)
                    .get(1)
                    .and_then(|a| a.as_int(ctx))
                    .unwrap_or(0)
            };
            let lhs = size_of(ctx, op.operand(ctx, 0).ty(ctx));
            let rhs = size_of(ctx, op.operand(ctx, 1).ty(ctx));
            let res = size_of(ctx, op.result_types(ctx)[0]);
            if lhs + rhs == res {
                Ok(())
            } else {
                Err(irdl_ir::Diagnostic::new(format!(
                    "result size {res} != {lhs} + {rhs}"
                )))
            }
        }),
    );
    irdl::register_dialects_with(
        &mut ctx,
        r#"Dialect vec {
            Constraint BoundedInteger : uint32_t {
                Summary "integer value between 0 and 32"
                NativeConstraint "bounded_u32"
            }
            Type vector {
                Parameters (typ: !AnyType, size: BoundedInteger)
            }
            Operation append_vector {
                ConstraintVars (T: !AnyType)
                Operands (lhs: !vector<T, BoundedInteger>, rhs: !vector<T, BoundedInteger>)
                Results (res: !vector<T, BoundedInteger>)
                NativeVerifier "append_vector_sizes"
            }
        }"#,
        &natives,
    )
    .unwrap();

    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let ui32 = ctx.int_type_with_signedness(32, irdl_ir::Signedness::Unsigned);
    let mk_size = |ctx: &mut Context, n: i128| ctx.int_attr(n, ui32);

    // The native constraint rejects out-of-range sizes at type creation.
    let too_big = mk_size(&mut ctx, 64);
    let err = ctx.parametric_type("vec", "vector", [f32a, too_big]).unwrap_err();
    assert!(err.to_string().contains("bounded_u32"), "{err}");

    let s2 = mk_size(&mut ctx, 2);
    let s3 = mk_size(&mut ctx, 3);
    let s5 = mk_size(&mut ctx, 5);
    let s6 = mk_size(&mut ctx, 6);
    let v2 = ctx.parametric_type("vec", "vector", [f32a, s2]).unwrap();
    let v3 = ctx.parametric_type("vec", "vector", [f32a, s3]).unwrap();
    let v5 = ctx.parametric_type("vec", "vector", [f32a, s5]).unwrap();
    let v6 = ctx.parametric_type("vec", "vector", [f32a, s6]).unwrap();

    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg = ctx.op_name("test", "arg");
    let a = ctx.create_op(OperationState::new(arg).add_result_types([v2]));
    let b = ctx.create_op(OperationState::new(arg).add_result_types([v3]));
    ctx.append_op(block, a);
    ctx.append_op(block, b);
    let va = a.result(&ctx, 0);
    let vb = b.result(&ctx, 0);
    let append = ctx.op_name("vec", "append_vector");
    // 2 + 3 = 5: the native op verifier accepts.
    let good = ctx.create_op(
        OperationState::new(append).add_operands([va, vb]).add_result_types([v5]),
    );
    ctx.append_op(block, good);
    verify_op(&ctx, module).expect("sizes add up");
    ctx.erase_op(good);
    // 2 + 3 != 6: rejected.
    let bad = ctx.create_op(
        OperationState::new(append).add_operands([va, vb]).add_result_types([v6]),
    );
    ctx.append_op(block, bad);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(errs.iter().any(|d| d.to_string().contains("!= 2 + 3")), "{errs:?}");
}

/// Listing 11: native parameter kinds (`TypeOrAttrParam`).
#[test]
fn native_params_from_spec() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect strings {
            TypeOrAttrParam StringParam {
                Summary "A string parameter"
                NativeType "string_param"
            }
            Attribute StringAttr {
                Parameters (data: StringParam)
            }
        }"#,
    )
    .unwrap();
    let value = ctx.native_attr("string_param", "hello").unwrap();
    assert!(ctx.parametric_attr("strings", "StringAttr", [value]).is_ok());
    // Non-native parameters are rejected.
    let plain = ctx.string_attr("hello");
    let err = ctx.parametric_attr("strings", "StringAttr", [plain]).unwrap_err();
    assert!(err.to_string().contains("native"), "{err}");
}

#[test]
fn variadic_with_segments_attribute() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect multi {
            Operation gather {
                Operands (starts: Variadic<!i32>, ends: Variadic<!i32>)
                Results (res: !i32)
            }
        }"#,
    )
    .unwrap();
    let i32 = ctx.i32_type();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg = ctx.op_name("test", "arg");
    let a = ctx.create_op(OperationState::new(arg).add_result_types([i32]));
    ctx.append_op(block, a);
    let v = a.result(&ctx, 0);
    let seg_key = ctx.symbol("operand_segment_sizes");
    let two = ctx.i64_attr(2);
    let one = ctx.i64_attr(1);
    let sizes = ctx.array_attr([two, one]);
    let gather = ctx.op_name("multi", "gather");
    let good = ctx.create_op(
        OperationState::new(gather)
            .add_operands([v, v, v])
            .add_result_types([i32])
            .add_attribute(seg_key, sizes),
    );
    ctx.append_op(block, good);
    verify_op(&ctx, module).expect("segmented variadics verify");
    ctx.erase_op(good);

    // Without the attribute: ambiguous.
    let bad = ctx.create_op(
        OperationState::new(gather).add_operands([v, v, v]).add_result_types([i32]),
    );
    ctx.append_op(block, bad);
    let errs = verify_op(&ctx, module).unwrap_err();
    assert!(errs.iter().any(|d| d.to_string().contains("segment")), "{errs:?}");
}

#[test]
fn compile_error_mentions_unknown_name() {
    let mut ctx = Context::new();
    let err = irdl::register_dialects(
        &mut ctx,
        "Dialect d { Operation o { Operands (x: !nonexistent) } }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("nonexistent"), "{err}");
}

#[test]
fn cross_dialect_references() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect base {
            Type token { Parameters () }
        }
        Dialect user {
            Operation consume {
                Operands (t: !base.token)
            }
        }"#,
    )
    .unwrap();
    let token = ctx.parametric_type("base", "token", []).unwrap();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let arg = ctx.op_name("test", "arg");
    let a = ctx.create_op(OperationState::new(arg).add_result_types([token]));
    ctx.append_op(block, a);
    let v = a.result(&ctx, 0);
    let consume = ctx.op_name("user", "consume");
    let op = ctx.create_op(OperationState::new(consume).add_operands([v]));
    ctx.append_op(block, op);
    verify_op(&ctx, module).expect("cross-dialect constraint verifies");
}

/// Paper §4.7: types can define a custom declarative format, not just
/// operations.
#[test]
fn type_custom_format_roundtrips() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect ints {
            Enum signedness { Signless, Signed, Unsigned }
            Type integer {
                Parameters (bitwidth: uint32_t, signed: signedness)
                Format "$bitwidth x $signed"
            }
        }"#,
    )
    .unwrap();
    let ui32 = ctx.int_type_with_signedness(32, irdl_ir::Signedness::Unsigned);
    let width = ctx.int_attr(16, ui32);
    let signed = ctx.enum_attr("ints", "signedness", "Signed");
    let ty = ctx.parametric_type("ints", "integer", [width, signed]).unwrap();
    let text = ty.display(&ctx);
    assert_eq!(text, "!ints.integer<16 : ui32 x #ints.signedness<Signed>>");
    let reparsed = irdl_ir::parse::parse_type_str(&mut ctx, &text).unwrap();
    assert_eq!(reparsed, ty);
    // A format that omits a parameter is a compile error.
    let err = irdl::register_dialects(
        &mut ctx,
        r#"Dialect bad {
            Type t { Parameters (a: uint32_t, b: string) Format "$a" }
        }"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("does not cover parameter `b`"), "{err}");
    // A format naming an unknown parameter is a compile error.
    let err = irdl::register_dialects(
        &mut ctx,
        r#"Dialect bad2 {
            Type t { Parameters (a: uint32_t) Format "$nope" }
        }"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("names no parameter"), "{err}");
}

/// Attribute definitions accept custom formats too.
#[test]
fn attr_custom_format_roundtrips() {
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect fancy {
            Attribute version {
                Parameters (major: uint32_t, minor: uint32_t)
                Format "$major . $minor"
            }
        }"#,
    )
    .unwrap();
    let ui32 = ctx.int_type_with_signedness(32, irdl_ir::Signedness::Unsigned);
    let major = ctx.int_attr(1, ui32);
    let minor = ctx.int_attr(4, ui32);
    let attr = ctx.parametric_attr("fancy", "version", [major, minor]).unwrap();
    let text = attr.display(&ctx);
    assert_eq!(text, "#fancy.version<1 : ui32 . 4 : ui32>");
    let reparsed = irdl_ir::parse::parse_attr_str(&mut ctx, &text).unwrap();
    assert_eq!(reparsed, attr);
}
