//! A catalog of malformed specifications and the diagnostics they produce.
//!
//! Good error messages are part of the DSL's value proposition ("can be
//! analyzed for correctness and tool support", paper §4); these tests pin
//! the message and the source location for each failure class.

use irdl_ir::Context;

/// Compiles `src` expecting failure; returns the rendered diagnostic.
fn compile_err(src: &str) -> String {
    let mut ctx = Context::new();
    let err = irdl::register_dialects(&mut ctx, src)
        .expect_err("specification should not compile");
    err.render(src)
}

#[test]
fn unknown_name_points_at_the_reference() {
    let src = "Dialect d {\n  Operation o {\n    Operands (x: !nonexistent)\n  }\n}";
    let msg = compile_err(src);
    assert!(msg.contains("unknown name `nonexistent`"), "{msg}");
    assert!(msg.contains("error at 3:"), "diagnostic should be on line 3: {msg}");
    assert!(msg.contains("in operation `d.o`"), "{msg}");
}

#[test]
fn arity_mismatch_names_the_type() {
    let src = "Dialect d {
  Type pair { Parameters (a: !AnyType, b: !AnyType) }
  Operation o { Operands (x: !pair<!f32>) }
}";
    let msg = compile_err(src);
    assert!(msg.contains("`pair` expects 2 parameter(s), got 1"), "{msg}");
}

#[test]
fn alias_cycles_are_reported() {
    let src = "Dialect d {
  Alias !A = !B
  Alias !B = !A
  Operation o { Operands (x: !A) }
}";
    let msg = compile_err(src);
    assert!(msg.contains("alias cycle"), "{msg}");
}

#[test]
fn missing_native_constraint_names_both_sides() {
    let src = r#"Dialect d {
  Constraint C : uint32_t { NativeConstraint "missing_hook" }
  Operation o { Attributes (a: C) }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("`missing_hook` is not registered"), "{msg}");
    assert!(msg.contains("required by `C`"), "{msg}");
}

#[test]
fn missing_native_verifier_is_reported() {
    let src = r#"Dialect d {
  Operation o { NativeVerifier "ghost_verifier" }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("`ghost_verifier` is not registered"), "{msg}");
}

#[test]
fn missing_native_param_kind_is_reported() {
    let src = r#"Dialect d {
  TypeOrAttrParam P { NativeType "ghost_kind" }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("`ghost_kind` is not registered"), "{msg}");
}

#[test]
fn format_with_unknown_directive() {
    let src = r#"Dialect d {
  Operation o {
    Operands (x: !f32)
    Results (r: !f32)
    Format "$x : $ghost"
  }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("`$ghost` names no operand"), "{msg}");
}

#[test]
fn format_must_cover_all_operands() {
    let src = r#"Dialect d {
  Operation o {
    Operands (x: !f32, y: !f32)
    Format "$x"
  }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("does not cover operand `y`"), "{msg}");
}

#[test]
fn variadic_operand_in_format_is_rejected() {
    let src = r#"Dialect d {
  Operation o {
    Operands (xs: Variadic<!f32>)
    Format "$xs"
  }
}"#;
    let msg = compile_err(src);
    assert!(msg.contains("variadic"), "{msg}");
}

#[test]
fn bad_enum_constructor_is_reported() {
    let src = "Dialect d {
  Enum color { Red, Green }
  Operation o { Attributes (c: color.Blue) }
}";
    let msg = compile_err(src);
    assert!(msg.contains("`Blue` is not a constructor of enum `color`"), "{msg}");
}

#[test]
fn duplicate_definitions_are_rejected() {
    let src = "Dialect d {
  Type t { Parameters () }
  Alias !t = !f32
}";
    let msg = compile_err(src);
    assert!(msg.contains("duplicate definition of `t`"), "{msg}");
}

#[test]
fn literal_overflow_in_constraint() {
    let src = "Dialect d { Type t { Parameters (a: 999 : int8_t) } }";
    let msg = compile_err(src);
    assert!(msg.contains("does not fit"), "{msg}");
}

#[test]
fn unterminated_dialect_body() {
    let src = "Dialect d { Operation o { }";
    let msg = compile_err(src);
    assert!(msg.contains("unterminated") || msg.contains("expected"), "{msg}");
}

#[test]
fn verifier_diagnostics_name_the_failing_part() {
    // Well-formed spec; ill-formed IR. The runtime diagnostic must name the
    // definition element that failed, not just "verification failed".
    let mut ctx = Context::new();
    irdl::register_dialects(
        &mut ctx,
        r#"Dialect d {
            Operation pick {
                Operands (cond: !i1, val: !AnyFloat)
                Results (out: !AnyFloat)
            }
        }"#,
    )
    .unwrap();
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let f32 = ctx.f32_type();
    let src = ctx.op_name("t", "src");
    let a = ctx.create_op(irdl_ir::OperationState::new(src).add_result_types([f32]));
    ctx.append_op(block, a);
    let v = a.result(&ctx, 0);
    let pick = ctx.op_name("d", "pick");
    // First operand must be i1, got f32.
    let bad = ctx.create_op(
        irdl_ir::OperationState::new(pick).add_operands([v, v]).add_result_types([f32]),
    );
    ctx.append_op(block, bad);
    let errs = irdl_ir::verify::verify_op(&ctx, module).unwrap_err();
    let msg = errs[0].to_string();
    assert!(msg.contains("operand `cond` is invalid"), "{msg}");
    assert!(msg.contains("expected type i1"), "{msg}");
    assert!(msg.contains("in operation `d.pick`"), "{msg}");
}
