//! Artifact sharing: one compiled bundle, many contexts.
//!
//! Compiles one IRDL dialect into a [`DialectBundle`], registers it into
//! two contexts, and checks that both enforce identical verdicts and print
//! identical output — plus static assertions pinning the `Send + Sync`
//! property of every artifact type that crosses threads.

use irdl::bundle::DialectBundle;
use irdl::program::{ProgramOpVerifier, ProgramParamsVerifier};
use irdl::verifier::{CompiledOp, CompiledParams};
use irdl::NativeRegistry;
use irdl_ir::parse::parse_module;
use irdl_ir::print::op_to_string;
use irdl_ir::verify::verify_op;
use irdl_ir::Context;

const SPEC: &str = r#"
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>
  Type complex {
    Parameters (elementType: !FloatType)
  }
  Operation mul {
    ConstraintVar (!T: !FloatType)
    Operands (lhs: !complex<!T>, rhs: !complex<!T>)
    Results (res: !complex<!T>)
  }
}
"#;

const VALID_IR: &str = r#"
%a = "test.source"() : () -> !cmath.complex<f32>
%b = "test.source"() : () -> !cmath.complex<f32>
%c = "cmath.mul"(%a, %b) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
"#;

const INVALID_IR: &str = r#"
%a = "test.source"() : () -> !cmath.complex<f32>
%b = "test.source"() : () -> !cmath.complex<f64>
%c = "cmath.mul"(%a, %b) : (!cmath.complex<f32>, !cmath.complex<f64>) -> !cmath.complex<f32>
"#;

fn compile_bundle() -> DialectBundle {
    let natives = NativeRegistry::with_std();
    let sources = vec![("cmath.irdl".to_string(), SPEC.to_string())];
    DialectBundle::compile(&sources, &natives).expect("spec compiles")
}

/// Parses, verifies, and prints `ir` in `ctx`; returns the verification
/// verdict and the printed text.
fn run_in(ctx: &mut Context, ir: &str) -> (bool, String) {
    let module = parse_module(ctx, ir).expect("module parses");
    let verdict = verify_op(ctx, module).is_ok();
    let printed = op_to_string(ctx, module);
    ctx.erase_op(module);
    (verdict, printed)
}

#[test]
fn two_contexts_agree_on_verdicts_and_output() {
    let bundle = compile_bundle();
    let mut first = bundle.instantiate();
    let mut second = bundle.instantiate();

    let (ok_a, printed_a) = run_in(&mut first, VALID_IR);
    let (ok_b, printed_b) = run_in(&mut second, VALID_IR);
    assert!(ok_a, "valid IR must verify in the first context");
    assert!(ok_b, "valid IR must verify in the second context");
    assert_eq!(printed_a, printed_b, "printed output must be identical");

    let (bad_a, _) = run_in(&mut first, INVALID_IR);
    let (bad_b, _) = run_in(&mut second, INVALID_IR);
    assert!(!bad_a, "mismatched element types must be rejected in the first context");
    assert!(!bad_b, "mismatched element types must be rejected in the second context");
}

#[test]
fn instantiation_does_not_recompile() {
    let bundle = compile_bundle();
    let before = irdl::dialect_compile_count();
    for _ in 0..8 {
        let ctx = bundle.instantiate();
        assert!(ctx.symbol_lookup("cmath").is_some());
    }
    assert_eq!(
        irdl::dialect_compile_count(),
        before,
        "instantiating a bundle must never recompile a dialect"
    );
}

#[test]
fn compiled_artifacts_are_send_sync() {
    fn _assert_send_sync<T: Send + Sync>() {}
    _assert_send_sync::<DialectBundle>();
    _assert_send_sync::<CompiledOp>();
    _assert_send_sync::<CompiledParams>();
    _assert_send_sync::<ProgramOpVerifier>();
    _assert_send_sync::<ProgramParamsVerifier>();
    _assert_send_sync::<NativeRegistry>();
    _assert_send_sync::<irdl_ir::dialect::DialectRegistry>();
    _assert_send_sync::<irdl_ir::dialect::OpInfo>();
    _assert_send_sync::<irdl_ir::dialect::TypeDefInfo>();
}
