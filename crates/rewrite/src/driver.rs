//! The greedy worklist rewrite driver.

use std::collections::HashSet;

use irdl_ir::diag::Diagnostic;
use irdl_ir::verify::{IncrementalVerifier, ModuleVerifier};
use irdl_ir::walk::collect_ops;
use irdl_ir::{ChangeJournal, Context, OpRef};

use crate::pattern::{PatternSet, Rewriter};

/// How the driver finds the patterns applicable to an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MatcherMode {
    /// Dispatch through the compiled [`crate::matcher::PatternMatcher`]
    /// automaton: one trie evaluation per op answers for the whole
    /// catalog. The default.
    #[default]
    Auto,
    /// Per-pattern scan via the root index, trying `match_and_rewrite` on
    /// every candidate. The pre-automaton behaviour, kept as the
    /// differential oracle: both modes must drive byte-identical output.
    Scan,
}

/// How much verification the driver interleaves with rewriting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckLevel {
    /// No verification: the fastest mode, for trusted patterns.
    #[default]
    Off,
    /// Journal-driven incremental verification after every application:
    /// the container is fully verified once up front, then each rewrite
    /// re-checks only what it touched — O(touched) per rewrite instead of
    /// O(module).
    Incremental,
    /// Full re-verification of the whole container after every
    /// application (and once up front). The conservative oracle —
    /// `Incremental` is required to produce the same verdicts.
    Full,
}

/// Statistics from one greedy rewriting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of successful pattern applications.
    pub rewrites: usize,
    /// Number of operations visited (including revisits).
    pub visited: usize,
}

/// Failure of [`rewrite_greedily_checked`]: a pattern application left the
/// IR invalid.
#[derive(Debug)]
pub struct RewriteVerifyError {
    /// Name of the pattern whose application produced the invalid IR.
    pub pattern: String,
    /// Statistics up to (and including) the offending application.
    pub stats: RewriteStats,
    /// The verifier diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

impl std::fmt::Display for RewriteVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pattern `{}` left the IR invalid after {} rewrite(s)",
            self.pattern, self.stats.rewrites
        )
    }
}

impl std::error::Error for RewriteVerifyError {}

/// Applies `patterns` to every operation nested under `container` until a
/// fixpoint is reached, in the style of MLIR's greedy pattern driver.
///
/// After each successful application, the operations created by the
/// rewrite and the users of any changed values are re-enqueued, so
/// cascading rewrites (like `conorm`: first fuse the multiplication, then
/// anything enabled by it) converge in one call.
pub fn rewrite_greedily(
    ctx: &mut Context,
    container: OpRef,
    patterns: &PatternSet,
) -> RewriteStats {
    rewrite_greedily_with(ctx, container, patterns, CheckLevel::Off)
        .expect("unchecked drive cannot fail")
}

/// Like [`rewrite_greedily`], but verifies `container` once up front and
/// incrementally re-verifies the dirty set after every successful pattern
/// application, stopping at the first application that leaves the IR
/// invalid. Equivalent to [`rewrite_greedily_with`] at
/// [`CheckLevel::Incremental`].
///
/// # Errors
///
/// Returns the offending pattern and diagnostics on the first invalid
/// intermediate state (pattern `<input>` if the IR was invalid on entry).
pub fn rewrite_greedily_checked(
    ctx: &mut Context,
    container: OpRef,
    patterns: &PatternSet,
) -> Result<RewriteStats, RewriteVerifyError> {
    rewrite_greedily_with(ctx, container, patterns, CheckLevel::Incremental)
}

/// The checker state for one drive, chosen by [`CheckLevel`].
enum Checker {
    Off,
    Incremental(IncrementalVerifier),
    Full(ModuleVerifier),
}

/// Greedy rewriting with a configurable verification level.
///
/// Both checked levels verify `container` in full before the first
/// rewrite: [`CheckLevel::Incremental`] needs a valid starting point for
/// its valid-before ⇒ valid-after argument, and sharing the behaviour
/// keeps the two levels verdict-equivalent.
///
/// # Errors
///
/// Returns the offending pattern and diagnostics on the first invalid
/// intermediate state (pattern `<input>` if the IR was invalid on entry).
/// Never fails at [`CheckLevel::Off`].
pub fn rewrite_greedily_with(
    ctx: &mut Context,
    container: OpRef,
    patterns: &PatternSet,
    check: CheckLevel,
) -> Result<RewriteStats, RewriteVerifyError> {
    rewrite_greedily_matched(ctx, container, patterns, check, MatcherMode::default())
}

/// [`rewrite_greedily_with`] with an explicit [`MatcherMode`]. The two
/// modes are semantically interchangeable — same rewrites, same order,
/// same output — differing only in how candidates are found; `Scan`
/// exists as the differential oracle and escape hatch.
///
/// # Errors
///
/// Returns the offending pattern and diagnostics on the first invalid
/// intermediate state (pattern `<input>` if the IR was invalid on entry).
/// Never fails at [`CheckLevel::Off`].
pub fn rewrite_greedily_matched(
    ctx: &mut Context,
    container: OpRef,
    patterns: &PatternSet,
    check: CheckLevel,
    mode: MatcherMode,
) -> Result<RewriteStats, RewriteVerifyError> {
    let mut checker = match check {
        CheckLevel::Off => Checker::Off,
        CheckLevel::Incremental => Checker::Incremental(IncrementalVerifier::new()),
        CheckLevel::Full => Checker::Full(ModuleVerifier::new()),
    };
    let stats = RewriteStats::default();
    let upfront = match &mut checker {
        Checker::Off => Ok(()),
        Checker::Incremental(v) => v.verify_full(ctx, container),
        Checker::Full(v) => v.verify(ctx, container),
    };
    if let Err(diagnostics) = upfront {
        return Err(RewriteVerifyError { pattern: "<input>".to_string(), stats, diagnostics });
    }
    // Fast path (after the upfront check, which callers rely on even for
    // empty sets): with nothing to apply, skip the worklist, journal, and
    // matcher entirely.
    if patterns.is_empty() {
        return Ok(stats);
    }
    drive(ctx, container, patterns, mode, checker, stats)
}

fn drive(
    ctx: &mut Context,
    container: OpRef,
    patterns: &PatternSet,
    mode: MatcherMode,
    mut checker: Checker,
    mut stats: RewriteStats,
) -> Result<RewriteStats, RewriteVerifyError> {
    let mut worklist: Vec<OpRef> = collect_ops(ctx, container);
    // The container itself is not rewritten.
    worklist.retain(|op| *op != container);
    let mut enqueued: HashSet<OpRef> = worklist.iter().copied().collect();
    // One journal, recycled across applications: the driver's requeue list
    // and the incremental verifier's dirty set are the same record, so the
    // hot loop allocates nothing per rewrite.
    let mut journal = ChangeJournal::new();
    let matcher = match mode {
        MatcherMode::Auto => Some(patterns.matcher()),
        MatcherMode::Scan => None,
    };
    // Candidate positions for the op in hand, ascending — which is
    // benefit-desc/registration priority order. One buffer, reused.
    let mut matched: Vec<u32> = Vec::new();

    while let Some(op) = worklist.pop() {
        enqueued.remove(&op);
        if !op.is_live(ctx) {
            continue;
        }
        stats.visited += 1;
        // Both modes produce candidates in the same priority order; the
        // automaton merely prunes candidates whose predicate program
        // already rules the op out.
        match &matcher {
            Some(automaton) => automaton.matches_into(ctx, op, &mut matched),
            None => {
                matched.clear();
                let op_name = op.name(ctx);
                matched.extend(patterns.candidate_positions(op_name).map(|i| i as u32));
            }
        }
        for &position in &matched {
            let pattern = &*patterns.patterns()[position as usize];
            journal.clear();
            let mut rewriter = Rewriter::new(ctx, op, &mut journal);
            let changed = pattern.match_and_rewrite(&mut rewriter);
            if changed {
                stats.rewrites += 1;
                let verdict = match &mut checker {
                    Checker::Off => Ok(()),
                    Checker::Incremental(v) => v.verify_changes(ctx, &journal),
                    Checker::Full(v) => v.verify(ctx, container),
                };
                if let Err(diagnostics) = verdict {
                    return Err(RewriteVerifyError {
                        pattern: pattern.name().to_string(),
                        stats,
                        diagnostics,
                    });
                }
                // Requeue from the journal: new ops, and the ops whose
                // operands were rewired (or that moved) — exactly the set
                // whose match status can have changed. Erased ops were
                // scrubbed out by the journal, so no tombstone checks or
                // use-list copies are needed.
                for &new_op in journal.created() {
                    if enqueued.insert(new_op) {
                        worklist.push(new_op);
                    }
                }
                for &changed_op in journal.modified() {
                    if changed_op.is_live(ctx) && enqueued.insert(changed_op) {
                        worklist.push(changed_op);
                    }
                }
                break; // The root may be gone; stop trying patterns on it.
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::RewritePattern;
    use irdl_ir::{OperationState, OpName};
    use std::sync::Arc;

    /// Rewrites `t.add(x, x)` into `t.double(x)`.
    struct AddToDouble {
        add: OpName,
        double: OpName,
    }

    impl RewritePattern for AddToDouble {
        fn root(&self) -> Option<OpName> {
            Some(self.add)
        }
        fn name(&self) -> &str {
            "add-to-double"
        }
        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
            let op = rewriter.root();
            let ctx = rewriter.ctx();
            if op.num_operands(ctx) != 2 || op.operand(ctx, 0) != op.operand(ctx, 1) {
                return false;
            }
            let x = op.operand(ctx, 0);
            let result_ty = op.result_types(ctx)[0];
            let double = rewriter.insert_before_root(
                OperationState::new(self.double)
                    .add_operands([x])
                    .add_result_types([result_ty]),
            );
            let ctx = rewriter.ctx();
            let replacement = double.result(ctx, 0);
            rewriter.replace_root(&[replacement]);
            true
        }
    }

    /// Folds `t.double(t.double(x))` into `t.quad(x)`.
    struct DoubleDoubleToQuad {
        double: OpName,
        quad: OpName,
    }

    impl RewritePattern for DoubleDoubleToQuad {
        fn root(&self) -> Option<OpName> {
            Some(self.double)
        }
        fn name(&self) -> &str {
            "double-double-to-quad"
        }
        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
            let op = rewriter.root();
            let ctx = rewriter.ctx();
            let Some(inner) = op.operand(ctx, 0).defining_op(ctx) else { return false };
            if inner.name(ctx) != self.double {
                return false;
            }
            let x = inner.operand(ctx, 0);
            let result_ty = op.result_types(ctx)[0];
            let quad = rewriter.insert_before_root(
                OperationState::new(self.quad).add_operands([x]).add_result_types([result_ty]),
            );
            let ctx = rewriter.ctx();
            let replacement = quad.result(ctx, 0);
            rewriter.replace_root(&[replacement]);
            rewriter.erase_if_unused(inner);
            true
        }
    }

    #[test]
    fn cascading_rewrites_reach_fixpoint() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let i32 = ctx.i32_type();
        let src = ctx.op_name("t", "src");
        let add = ctx.op_name("t", "add");
        let double = ctx.op_name("t", "double");
        let quad = ctx.op_name("t", "quad");

        // x = src(); a = add(x, x); b = add(a, a); sink(b)
        let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, x);
        let vx = x.result(&ctx, 0);
        let a = ctx.create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
        ctx.append_op(block, a);
        let va = a.result(&ctx, 0);
        let b = ctx.create_op(OperationState::new(add).add_operands([va, va]).add_result_types([i32]));
        ctx.append_op(block, b);
        let vb = b.result(&ctx, 0);
        let sink = ctx.op_name("t", "sink");
        let s = ctx.create_op(OperationState::new(sink).add_operands([vb]));
        ctx.append_op(block, s);

        let mut patterns = PatternSet::new();
        patterns.add(Arc::new(AddToDouble { add, double }));
        patterns.add(Arc::new(DoubleDoubleToQuad { double, quad }));
        let stats = rewrite_greedily(&mut ctx, module, &patterns);

        // add(x,x) -> double(x); add(a,a) -> double(a);
        // double(double(x)) -> quad(x). Three rewrites total.
        assert_eq!(stats.rewrites, 3);
        let names: Vec<String> =
            block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
        assert_eq!(names, ["t.src", "t.quad", "t.sink"]);
    }

    /// Replacing a root with a *pre-existing* value must re-enqueue that
    /// value's users so cascading rewrites still reach a fixpoint.
    struct ForwardCopy {
        copy: OpName,
    }

    impl RewritePattern for ForwardCopy {
        fn root(&self) -> Option<OpName> {
            Some(self.copy)
        }
        fn name(&self) -> &str {
            "forward-copy"
        }
        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
            let op = rewriter.root();
            let source = op.operand(rewriter.ctx(), 0);
            rewriter.replace_root(&[source]);
            true
        }
    }

    #[test]
    fn replacement_with_existing_value_requeues_users() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let i32 = ctx.i32_type();
        let src = ctx.op_name("t", "src");
        let copy = ctx.op_name("t", "copy");
        let add = ctx.op_name("t", "add");
        let double = ctx.op_name("t", "double");

        // x = src(); c = copy(x); b = add(c, x); sink(b)
        // The copy-forwarding rewrite turns add(c, x) into add(x, x), which
        // only then matches add-to-double. Without touched-value requeueing
        // the add op is never revisited (it was popped before the copy).
        let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, x);
        let vx = x.result(&ctx, 0);
        let c = ctx.create_op(OperationState::new(copy).add_operands([vx]).add_result_types([i32]));
        ctx.append_op(block, c);
        let vc = c.result(&ctx, 0);
        let b = ctx.create_op(OperationState::new(add).add_operands([vc, vx]).add_result_types([i32]));
        ctx.append_op(block, b);
        let vb = b.result(&ctx, 0);
        let sink = ctx.op_name("t", "sink");
        let s = ctx.create_op(OperationState::new(sink).add_operands([vb]));
        ctx.append_op(block, s);

        let mut patterns = PatternSet::new();
        // Benefit ordering + LIFO worklist make the add op pop before the
        // copy op is forwarded.
        patterns.add(Arc::new(AddToDouble { add, double }));
        patterns.add(Arc::new(ForwardCopy { copy }));
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 2, "copy forward + add-to-double");
        let names: Vec<String> =
            block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
        assert_eq!(names, ["t.src", "t.double", "t.sink"]);
    }

    /// A deliberately buggy pattern: inserts an op *before* the root that
    /// uses the root's result, creating a use-before-def violation.
    struct BreaksDominance {
        add: OpName,
        bad: OpName,
    }

    impl RewritePattern for BreaksDominance {
        fn root(&self) -> Option<OpName> {
            Some(self.add)
        }
        fn name(&self) -> &str {
            "breaks-dominance"
        }
        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
            let op = rewriter.root();
            let result = op.result(rewriter.ctx(), 0);
            rewriter.insert_before_root(OperationState::new(self.bad).add_operands([result]));
            true
        }
    }

    #[test]
    fn checked_driver_catches_invalid_intermediate_ir() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let i32 = ctx.i32_type();
        let src = ctx.op_name("t", "src");
        let add = ctx.op_name("t", "add");
        let double = ctx.op_name("t", "double");
        let bad = ctx.op_name("t", "bad");

        let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, x);
        let vx = x.result(&ctx, 0);
        let a = ctx.create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
        ctx.append_op(block, a);

        // A correct pattern set passes the checked driver...
        let mut good = PatternSet::new();
        good.add(Arc::new(AddToDouble { add, double }));
        let stats = rewrite_greedily_checked(&mut ctx, module, &good).unwrap();
        assert_eq!(stats.rewrites, 1);

        // ...and a buggy one is caught at the first invalid state.
        let y = ctx.create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
        ctx.append_op(block, y);
        let mut buggy = PatternSet::new();
        buggy.add(Arc::new(BreaksDominance { add, bad }));
        let err = rewrite_greedily_checked(&mut ctx, module, &buggy).unwrap_err();
        assert_eq!(err.pattern, "breaks-dominance");
        assert!(
            err.diagnostics.iter().any(|d| d.message().contains("dominates")),
            "{:?}",
            err.diagnostics
        );
    }

    /// The incremental and full check levels must agree — on success and
    /// on the exact failing pattern.
    #[test]
    fn incremental_and_full_check_levels_agree() {
        for check in [CheckLevel::Full, CheckLevel::Incremental] {
            let mut ctx = Context::new();
            let module = ctx.create_module();
            let block = ctx.module_block(module);
            let i32 = ctx.i32_type();
            let src = ctx.op_name("t", "src");
            let add = ctx.op_name("t", "add");
            let double = ctx.op_name("t", "double");
            let bad = ctx.op_name("t", "bad");

            let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
            ctx.append_op(block, x);
            let vx = x.result(&ctx, 0);
            let a = ctx
                .create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
            ctx.append_op(block, a);

            let mut good = PatternSet::new();
            good.add(Arc::new(AddToDouble { add, double }));
            let stats = rewrite_greedily_with(&mut ctx, module, &good, check).unwrap();
            assert_eq!(stats.rewrites, 1, "{check:?}");

            let y = ctx
                .create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
            ctx.append_op(block, y);
            let mut buggy = PatternSet::new();
            buggy.add(Arc::new(BreaksDominance { add, bad }));
            let err = rewrite_greedily_with(&mut ctx, module, &buggy, check).unwrap_err();
            assert_eq!(err.pattern, "breaks-dominance", "{check:?}");
            assert!(
                err.diagnostics.iter().any(|d| d.message().contains("dominates")),
                "{check:?}: {:?}",
                err.diagnostics
            );
        }
    }

    /// Checked levels validate the input IR before the first rewrite.
    #[test]
    fn checked_levels_reject_invalid_input() {
        for check in [CheckLevel::Full, CheckLevel::Incremental] {
            let mut ctx = Context::new();
            let module = ctx.create_module();
            let block = ctx.module_block(module);
            let i32 = ctx.i32_type();
            let src = ctx.op_name("t", "src");
            let use_name = ctx.op_name("t", "use");
            let def = ctx.create_op(OperationState::new(src).add_result_types([i32]));
            let v = def.result(&ctx, 0);
            let user = ctx.create_op(OperationState::new(use_name).add_operands([v]));
            // Use before def: invalid from the start.
            ctx.append_op(block, user);
            ctx.append_op(block, def);
            let err =
                rewrite_greedily_with(&mut ctx, module, &PatternSet::new(), check).unwrap_err();
            assert_eq!(err.pattern, "<input>", "{check:?}");
            assert_eq!(err.stats.rewrites, 0);
        }
    }

    /// A pattern that never fires but records that (and when) it was
    /// tried, for observing dispatch order.
    struct Probe {
        name: &'static str,
        benefit: usize,
        root: Option<OpName>,
        log: Arc<std::sync::Mutex<Vec<&'static str>>>,
    }

    impl RewritePattern for Probe {
        fn root(&self) -> Option<OpName> {
            self.root
        }
        fn benefit(&self) -> usize {
            self.benefit
        }
        fn name(&self) -> &str {
            self.name
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            self.log.lock().unwrap().push(self.name);
            false
        }
    }

    /// Candidate order — benefit desc, registration-order ties, anchored
    /// and anchorless interleaved — must be identical under automaton and
    /// scan dispatch (the ordering semantics `PatternSet` pins, observed
    /// through the driver).
    #[test]
    fn matcher_modes_preserve_ordering_semantics() {
        for mode in [MatcherMode::Auto, MatcherMode::Scan] {
            let mut ctx = Context::new();
            let module = ctx.create_module();
            let block = ctx.module_block(module);
            let i32 = ctx.i32_type();
            let src = ctx.op_name("t", "src");
            let add = ctx.op_name("t", "add");
            let mul = ctx.op_name("t", "mul");
            let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
            ctx.append_op(block, x);
            let vx = x.result(&ctx, 0);
            let a = ctx
                .create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
            ctx.append_op(block, a);

            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut patterns = PatternSet::new();
            for (name, benefit, root) in [
                ("add-low-a", 1, Some(add)),
                ("any-high", 9, None),
                ("add-low-b", 1, Some(add)),
                ("add-high", 9, Some(add)),
                ("mul-mid", 5, Some(mul)),
            ] {
                patterns.add(Arc::new(Probe { name, benefit, root, log: log.clone() }));
            }
            rewrite_greedily_matched(&mut ctx, module, &patterns, CheckLevel::Off, mode)
                .unwrap();
            let order: Vec<&str> = log.lock().unwrap().clone();
            // Per op the probes fire in priority order; the mul-anchored
            // pattern never fires (no mul op). The src op sees only the
            // anchorless probe.
            let add_order: Vec<&str> =
                order.iter().copied().filter(|n| n.starts_with("add") || *n == "any-high").collect();
            assert!(!order.contains(&"mul-mid"), "{mode:?}: {order:?}");
            // The add op is visited once; its candidate sequence appears
            // contiguously (the src op contributes a lone any-high).
            let window: Vec<&str> = add_order
                .windows(4)
                .find(|w| w[0] == "any-high" && w[1] == "add-high")
                .map(|w| w.to_vec())
                .unwrap_or_default();
            assert_eq!(
                window,
                ["any-high", "add-high", "add-low-a", "add-low-b"],
                "{mode:?}: {order:?}"
            );
        }
    }

    /// Both matcher modes must drive byte-identical results through a
    /// cascading rewrite sequence.
    #[test]
    fn matcher_modes_drive_identically() {
        let mut outcomes = Vec::new();
        for mode in [MatcherMode::Auto, MatcherMode::Scan] {
            let mut ctx = Context::new();
            let module = ctx.create_module();
            let block = ctx.module_block(module);
            let i32 = ctx.i32_type();
            let src = ctx.op_name("t", "src");
            let add = ctx.op_name("t", "add");
            let double = ctx.op_name("t", "double");
            let quad = ctx.op_name("t", "quad");
            let x = ctx.create_op(OperationState::new(src).add_result_types([i32]));
            ctx.append_op(block, x);
            let vx = x.result(&ctx, 0);
            let a = ctx
                .create_op(OperationState::new(add).add_operands([vx, vx]).add_result_types([i32]));
            ctx.append_op(block, a);
            let va = a.result(&ctx, 0);
            let b = ctx
                .create_op(OperationState::new(add).add_operands([va, va]).add_result_types([i32]));
            ctx.append_op(block, b);
            let vb = b.result(&ctx, 0);
            let sink = ctx.op_name("t", "sink");
            let s = ctx.create_op(OperationState::new(sink).add_operands([vb]));
            ctx.append_op(block, s);

            let mut patterns = PatternSet::new();
            patterns.add(Arc::new(AddToDouble { add, double }));
            patterns.add(Arc::new(DoubleDoubleToQuad { double, quad }));
            let stats =
                rewrite_greedily_matched(&mut ctx, module, &patterns, CheckLevel::Off, mode)
                    .unwrap();
            let names: Vec<String> =
                block.ops(&ctx).iter().map(|o| o.name(&ctx).display(&ctx)).collect();
            outcomes.push((stats.rewrites, names));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0].0, 3);
    }

    #[test]
    fn no_patterns_is_a_noop() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let src = ctx.op_name("t", "src");
        let op = ctx.create_op(OperationState::new(src));
        ctx.append_op(block, op);
        let stats = rewrite_greedily(&mut ctx, module, &PatternSet::new());
        assert_eq!(stats.rewrites, 0);
        assert!(op.is_live(&ctx));
    }
}
