//! Pattern rewriting for the IRDL SSA IR.
//!
//! The paper motivates IRDL with a peephole optimization on the `cmath`
//! dialect (Listing 1): `norm(p) * norm(q)` → `norm(p * q)`, and notes that
//! dynamic pattern rewriting plus runtime-registered dialects "provides the
//! components needed to define a simple pattern-based compilation flow"
//! without additional C++ (§3). This crate supplies both halves:
//!
//! - [`pattern`] / [`driver`]: a [`RewritePattern`] trait and a greedy
//!   worklist driver, for patterns written in Rust;
//! - [`dsl`]: a small declarative pattern format, so rewrites — like the
//!   dialects they operate on — can be loaded from text at runtime.
//!
//! # Example
//!
//! ```
//! use irdl_ir::{parse::parse_module, print::op_to_string, Context};
//! use irdl_rewrite::dsl::parse_patterns;
//! use irdl_rewrite::driver::rewrite_greedily;
//!
//! let mut ctx = Context::new();
//! // A toy dialect with a double(x) op and an add op.
//! irdl::register_dialects(
//!     &mut ctx,
//!     "Dialect toy {
//!        Operation double { Operands (x: !i32) Results (r: !i32) }
//!        Operation add { Operands (a: !i32, b: !i32) Results (r: !i32) }
//!      }",
//! )?;
//! let patterns = parse_patterns(
//!     &mut ctx,
//!     "Pattern add_to_double {
//!        Match {
//!          %r = toy.add(%x, %x)
//!        }
//!        Rewrite {
//!          %d = toy.double(%x) : typeof(%x)
//!          Replace %r with %d
//!        }
//!      }",
//! )?;
//! let module = parse_module(
//!     &mut ctx,
//!     r#"
//!     %x = "toy.source"() : () -> i32
//!     %r = "toy.add"(%x, %x) : (i32, i32) -> i32
//!     "#,
//! )?;
//! let stats = rewrite_greedily(&mut ctx, module, &patterns);
//! assert_eq!(stats.rewrites, 1);
//! assert!(op_to_string(&ctx, module).contains("toy.double"));
//! # Ok::<(), irdl_ir::Diagnostic>(())
//! ```

pub mod bytecode;
pub mod driver;
pub mod dsl;
pub mod fold;
pub mod matcher;
pub mod pattern;
pub mod pipeline;

pub use driver::{
    rewrite_greedily, rewrite_greedily_checked, rewrite_greedily_matched, rewrite_greedily_with,
    CheckLevel, MatcherMode, RewriteStats, RewriteVerifyError,
};
pub use bytecode::{decode_match_programs, encode_match_programs, PROGRAMS_MAGIC};
pub use dsl::{parse_patterns, DeclarativePattern};
pub use fold::{fold_patterns, FoldConstants};
pub use matcher::{matcher_compile_count, MatchProgram, PatternMatcher, Pred};
pub use pattern::{PatternSet, RewritePattern, Rewriter};
pub use pipeline::{
    run_batch, run_batch_inputs, ModuleResult, PipelineInput, PipelineOptions, PipelineReport,
    WorkerReport,
};
