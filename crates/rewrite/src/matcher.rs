//! Pattern-catalog compilation: predicate programs and the shared matcher
//! automaton.
//!
//! The root index (see [`crate::pattern::PatternSet`]) made candidate
//! dispatch O(patterns-per-root), but every candidate still re-walked the
//! same operand DAG and re-tested the same predicates independently. This
//! module compiles the whole catalog into one artifact instead, in the
//! spirit of MLIR's PDL bytecode:
//!
//! 1. each declarative pattern is *lowered* to a flat [`MatchProgram`] — a
//!    linear sequence of [`Pred`] instructions over positions in the
//!    operand DAG rooted at the candidate op;
//! 2. all programs are *merged* into a [`PatternMatcher`]: a trie keyed on
//!    shared predicate prefixes, with [`Pred::OperandDef`] siblings fused
//!    into hash switches dispatched on the defining op's symbol.
//!
//! One automaton evaluation per operation then answers "which patterns can
//! match here?" for the entire catalog: shared prefixes are tested once, a
//! failing prefix prunes every pattern behind it, and a def-switch replaces
//! k sibling symbol tests with one hash lookup. Patterns with opaque Rust
//! match logic lower to the empty program, which accepts unconditionally at
//! their root — exactly the root-index behaviour they had before.
//!
//! # Soundness contract
//!
//! The automaton is a conservative *prefilter*: the driver still calls
//! [`RewritePattern::match_and_rewrite`] on every surviving candidate, in
//! the same benefit-desc/registration order a per-pattern scan would use.
//! A program may therefore accept an op its pattern then fails to match
//! (harmless, merely wasted work) but must never reject an op its pattern
//! *would* match — a false negative silently changes rewrite semantics.
//! Programs lowered from [`crate::dsl::DeclarativePattern`] are complete,
//! so their survivors essentially always match.
//!
//! [`RewritePattern::match_and_rewrite`]: crate::pattern::RewritePattern::match_and_rewrite

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use irdl_ir::{Attribute, Context, OpName, OpRef, Symbol, Value};

use crate::pattern::RewritePattern;

/// Identifies an operation in the match DAG by the chain of operand
/// indices leading to it from the root: `[]` is the root itself, `[i]` the
/// defining op of the root's operand `i`, `[i, j]` the defining op of
/// *that* op's operand `j`, and so on.
pub type OpPath = Vec<u8>;

/// A value position inside the match DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValuePos {
    /// Operand `index` of the op at `path`.
    Operand {
        /// Path of the op holding the operand.
        path: OpPath,
        /// Operand slot.
        index: u8,
    },
    /// Result 0 of the op at `path`.
    Result {
        /// Path of the defining op.
        path: OpPath,
    },
}

/// One predicate instruction. Every variant evaluates totally: a path that
/// does not resolve (missing defining op, out-of-range slot) makes the
/// predicate false rather than a fault, so trie merging can never create
/// an unsafe instruction order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// The op at `path` has exactly `count` operands.
    OperandCount {
        /// Op position.
        path: OpPath,
        /// Required operand count.
        count: u8,
    },
    /// The op at `path` has exactly `count` results.
    ResultCount {
        /// Op position.
        path: OpPath,
        /// Required result count.
        count: u8,
    },
    /// Operand `index` of the op at `path` is produced by an operation
    /// named `name` (false for block arguments).
    OperandDef {
        /// Op position.
        path: OpPath,
        /// Operand slot.
        index: u8,
        /// Required defining-op symbol.
        name: OpName,
    },
    /// The values at two positions are the same SSA value.
    ValueEq {
        /// First position.
        a: ValuePos,
        /// Second position.
        b: ValuePos,
    },
    /// The op at `path` carries attribute `key` with exactly the interned
    /// value `value`.
    AttrEq {
        /// Op position.
        path: OpPath,
        /// Attribute key.
        key: Symbol,
        /// Required attribute value.
        value: Attribute,
    },
}

/// A pattern lowered to a linear predicate program.
///
/// `preds` is evaluated in order; every instruction that touches a
/// non-root position is preceded (in the same program) by the
/// [`Pred::OperandDef`] chain that establishes the position, so a prefix
/// of a program is always meaningful on its own — the property trie
/// merging relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchProgram {
    /// Root op symbol the program is keyed on; `None` programs are tried
    /// on every operation (anchorless patterns).
    pub root: Option<OpName>,
    /// The predicate instructions, in canonical emission order.
    pub preds: Vec<Pred>,
}

impl MatchProgram {
    /// The always-accepting program for a pattern with opaque match logic:
    /// candidate at every op named `root` (or every op, if `None`).
    pub fn opaque(root: Option<OpName>) -> MatchProgram {
        MatchProgram { root, preds: Vec::new() }
    }
}

static MATCHER_COMPILES: AtomicU64 = AtomicU64::new(0);

/// Number of [`PatternMatcher`] compilations in this process — the
/// automaton analog of [`irdl::dialect_compile_count`]: sealed artifacts
/// must be compiled once and shared, never rebuilt per worker or per
/// drive.
///
/// [`irdl::dialect_compile_count`]: irdl::dialect_compile_count
pub fn matcher_compile_count() -> u64 {
    MATCHER_COMPILES.load(Ordering::Relaxed)
}

/// A switch over the defining-op symbol at one value position: k sibling
/// [`Pred::OperandDef`] tests fused into a single hash lookup.
struct DefSwitch {
    path: OpPath,
    index: u8,
    cases: HashMap<OpName, usize>,
}

/// One interior trie state. `accepts` lists the patterns whose whole
/// program has passed once evaluation reaches this branch.
#[derive(Default)]
struct Branch {
    accepts: Vec<u32>,
    switches: Vec<DefSwitch>,
    tests: Vec<usize>,
}

/// A linearly-tested trie edge (every predicate except `OperandDef`).
struct Test {
    pred: Pred,
    child: usize,
}

/// The compiled catalog: every pattern's program merged into one trie,
/// dispatched first on the root op symbol and then on shared predicate
/// prefixes. Immutable after compilation and `Send + Sync`, like the
/// constraint programs dialect compilation produces — compile once at
/// seal time, share across every worker.
pub struct PatternMatcher {
    /// Entry branch per anchored root symbol.
    roots: HashMap<OpName, usize>,
    /// Entry branch shared by anchorless programs (always branch 0).
    anchorless: usize,
    branches: Vec<Branch>,
    tests: Vec<Test>,
    patterns: u32,
}

impl std::fmt::Debug for PatternMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternMatcher")
            .field("patterns", &self.patterns)
            .field("roots", &self.roots.len())
            .field("branches", &self.branches.len())
            .field("tests", &self.tests.len())
            .finish()
    }
}

impl PatternMatcher {
    /// Compiles `patterns` (in priority order, i.e. exactly
    /// [`crate::pattern::PatternSet::patterns`]) into one automaton.
    /// Pattern positions reported by [`PatternMatcher::matches_into`]
    /// index into this slice.
    pub fn compile(patterns: &[Arc<dyn RewritePattern>]) -> PatternMatcher {
        MATCHER_COMPILES.fetch_add(1, Ordering::Relaxed);
        let mut matcher = PatternMatcher {
            roots: HashMap::new(),
            anchorless: 0,
            branches: vec![Branch::default()],
            tests: Vec::new(),
            patterns: patterns.len() as u32,
        };
        for (position, pattern) in patterns.iter().enumerate() {
            let program = pattern
                .match_program()
                .unwrap_or_else(|| MatchProgram::opaque(pattern.root()));
            let entry = match program.root {
                Some(name) => match matcher.roots.get(&name) {
                    Some(&branch) => branch,
                    None => {
                        let branch = matcher.new_branch();
                        matcher.roots.insert(name, branch);
                        branch
                    }
                },
                None => matcher.anchorless,
            };
            matcher.insert(entry, &program.preds, position as u32);
        }
        matcher
    }

    fn new_branch(&mut self) -> usize {
        self.branches.push(Branch::default());
        self.branches.len() - 1
    }

    /// Threads one program into the trie, reusing existing edges for
    /// every shared prefix instruction.
    fn insert(&mut self, entry: usize, preds: &[Pred], position: u32) {
        let mut branch = entry;
        for pred in preds {
            branch = match pred {
                Pred::OperandDef { path, index, name } => {
                    let group = self.branches[branch]
                        .switches
                        .iter()
                        .position(|s| s.path == *path && s.index == *index)
                        .unwrap_or_else(|| {
                            self.branches[branch].switches.push(DefSwitch {
                                path: path.clone(),
                                index: *index,
                                cases: HashMap::new(),
                            });
                            self.branches[branch].switches.len() - 1
                        });
                    match self.branches[branch].switches[group].cases.get(name) {
                        Some(&child) => child,
                        None => {
                            let child = self.new_branch();
                            self.branches[branch].switches[group].cases.insert(*name, child);
                            child
                        }
                    }
                }
                other => {
                    let existing = self.branches[branch]
                        .tests
                        .iter()
                        .copied()
                        .find(|&t| self.tests[t].pred == *other);
                    match existing {
                        Some(test) => self.tests[test].child,
                        None => {
                            let child = self.new_branch();
                            self.tests.push(Test { pred: other.clone(), child });
                            let test = self.tests.len() - 1;
                            self.branches[branch].tests.push(test);
                            child
                        }
                    }
                }
            };
        }
        self.branches[branch].accepts.push(position);
    }

    /// Number of patterns compiled in.
    pub fn num_patterns(&self) -> usize {
        self.patterns as usize
    }

    /// Number of trie states — with shared prefixes this grows sublinearly
    /// in the summed program length.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of linearly-tested edges (def-switch cases excluded).
    pub fn num_tests(&self) -> usize {
        self.tests.len()
    }

    /// Appends to `out` the positions of every pattern whose program
    /// accepts at `op`, ascending — which, because position in the sorted
    /// pattern list *is* priority, is exactly the benefit-desc /
    /// registration-order candidate sequence a per-pattern scan visits.
    ///
    /// `out` is cleared first; reuse one buffer across calls to keep the
    /// hot loop allocation-free.
    pub fn matches_into(&self, ctx: &Context, op: OpRef, out: &mut Vec<u32>) {
        out.clear();
        if let Some(&entry) = self.roots.get(&op.name(ctx)) {
            self.eval(ctx, op, entry, out);
        }
        self.eval(ctx, op, self.anchorless, out);
        out.sort_unstable();
    }

    /// [`PatternMatcher::matches_into`] into a fresh buffer (tests and
    /// diagnostics; the driver uses the buffered form).
    pub fn matches(&self, ctx: &Context, op: OpRef) -> Vec<u32> {
        let mut out = Vec::new();
        self.matches_into(ctx, op, &mut out);
        out
    }

    fn eval(&self, ctx: &Context, root: OpRef, branch: usize, out: &mut Vec<u32>) {
        let branch = &self.branches[branch];
        out.extend_from_slice(&branch.accepts);
        for switch in &branch.switches {
            let Some(op) = resolve_op(ctx, root, &switch.path) else { continue };
            if usize::from(switch.index) >= op.num_operands(ctx) {
                continue;
            }
            let Some(def) = op.operand(ctx, switch.index.into()).defining_op(ctx) else {
                continue;
            };
            if let Some(&child) = switch.cases.get(&def.name(ctx)) {
                self.eval(ctx, root, child, out);
            }
        }
        for &test in &branch.tests {
            let Test { pred, child } = &self.tests[test];
            if holds(ctx, root, pred) {
                self.eval(ctx, root, *child, out);
            }
        }
    }
}

/// Walks `path` through operand defining ops starting at `root`.
fn resolve_op(ctx: &Context, root: OpRef, path: &[u8]) -> Option<OpRef> {
    let mut op = root;
    for &index in path {
        let index = usize::from(index);
        if index >= op.num_operands(ctx) {
            return None;
        }
        op = op.operand(ctx, index).defining_op(ctx)?;
    }
    Some(op)
}

fn resolve_value(ctx: &Context, root: OpRef, pos: &ValuePos) -> Option<Value> {
    match pos {
        ValuePos::Operand { path, index } => {
            let op = resolve_op(ctx, root, path)?;
            let index = usize::from(*index);
            (index < op.num_operands(ctx)).then(|| op.operand(ctx, index))
        }
        ValuePos::Result { path } => {
            let op = resolve_op(ctx, root, path)?;
            (op.num_results(ctx) > 0).then(|| op.result(ctx, 0))
        }
    }
}

fn holds(ctx: &Context, root: OpRef, pred: &Pred) -> bool {
    match pred {
        Pred::OperandCount { path, count } => resolve_op(ctx, root, path)
            .is_some_and(|op| op.num_operands(ctx) == usize::from(*count)),
        Pred::ResultCount { path, count } => resolve_op(ctx, root, path)
            .is_some_and(|op| op.num_results(ctx) == usize::from(*count)),
        Pred::OperandDef { path, index, name } => {
            let Some(op) = resolve_op(ctx, root, path) else { return false };
            if usize::from(*index) >= op.num_operands(ctx) {
                return false;
            }
            op.operand(ctx, usize::from(*index))
                .defining_op(ctx)
                .is_some_and(|def| def.name(ctx) == *name)
        }
        Pred::ValueEq { a, b } => match (resolve_value(ctx, root, a), resolve_value(ctx, root, b)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
        Pred::AttrEq { path, key, value } => resolve_op(ctx, root, path)
            .is_some_and(|op| op.attr_sym(ctx, *key) == Some(*value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternSet, Rewriter};
    use irdl_ir::OperationState;

    /// An opaque pattern with a configurable root.
    struct Opaque {
        root: Option<OpName>,
        benefit: usize,
    }
    impl RewritePattern for Opaque {
        fn root(&self) -> Option<OpName> {
            self.root
        }
        fn benefit(&self) -> usize {
            self.benefit
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    /// A pattern that supplies an explicit program.
    struct Programmed {
        program: MatchProgram,
    }
    impl RewritePattern for Programmed {
        fn root(&self) -> Option<OpName> {
            self.program.root
        }
        fn match_program(&self) -> Option<MatchProgram> {
            Some(self.program.clone())
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    fn program(root: OpName, preds: Vec<Pred>) -> Arc<dyn RewritePattern> {
        Arc::new(Programmed { program: MatchProgram { root: Some(root), preds } })
    }

    /// `add = t.add(src(), src())`, returning (add, src-op).
    fn add_of_sources(ctx: &mut Context) -> (OpRef, OpRef) {
        let i32 = ctx.i32_type();
        let block = ctx.create_block([]);
        let src = ctx.op_name("t", "src");
        let a = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, a);
        let va = a.result(ctx, 0);
        let add = ctx.op_name("t", "add");
        let op = ctx
            .create_op(OperationState::new(add).add_operands([va, va]).add_result_types([i32]));
        ctx.append_op(block, op);
        (op, a)
    }

    #[test]
    fn opaque_patterns_reproduce_root_index_dispatch() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let mul = ctx.op_name("t", "mul");
        let mut set = PatternSet::new();
        set.add(Arc::new(Opaque { root: Some(add), benefit: 1 }));
        set.add(Arc::new(Opaque { root: None, benefit: 9 }));
        set.add(Arc::new(Opaque { root: Some(mul), benefit: 5 }));
        let matcher = PatternMatcher::compile(set.patterns());

        let (add_op, _) = add_of_sources(&mut ctx);
        // Positions must equal the scan's candidate positions, ascending.
        let scan: Vec<u32> = set.candidate_positions(add).map(|i| i as u32).collect();
        assert_eq!(matcher.matches(&ctx, add_op), scan);
        // The mul-anchored pattern is never a candidate for an add op.
        assert!(!matcher.matches(&ctx, add_op).contains(&{
            set.patterns()
                .iter()
                .position(|p| p.root() == Some(mul))
                .unwrap() as u32
        }));
    }

    #[test]
    fn def_switch_dispatches_on_defining_op_symbol() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let src = ctx.op_name("t", "src");
        let other = ctx.op_name("t", "other");
        let hit = program(
            add,
            vec![Pred::OperandDef { path: vec![], index: 0, name: src }],
        );
        let miss = program(
            add,
            vec![Pred::OperandDef { path: vec![], index: 0, name: other }],
        );
        let set: PatternSet = [hit, miss].into_iter().collect();
        let matcher = PatternMatcher::compile(set.patterns());
        // Both programs share one switch: two cases, one branch each.
        assert_eq!(matcher.num_tests(), 0, "OperandDef edges become switch cases");

        let (add_op, _) = add_of_sources(&mut ctx);
        assert_eq!(matcher.matches(&ctx, add_op), vec![0]);
    }

    #[test]
    fn shared_prefixes_merge_into_one_path() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let shared = vec![
            Pred::OperandCount { path: vec![], count: 2 },
            Pred::ResultCount { path: vec![], count: 1 },
        ];
        let mut a = shared.clone();
        a.push(Pred::ValueEq {
            a: ValuePos::Operand { path: vec![], index: 0 },
            b: ValuePos::Operand { path: vec![], index: 1 },
        });
        let set: PatternSet =
            [program(add, shared.clone()), program(add, a)].into_iter().collect();
        let matcher = PatternMatcher::compile(set.patterns());
        // Prefix sharing: OperandCount and ResultCount appear once each.
        assert_eq!(matcher.num_tests(), 3);

        let (add_op, _) = add_of_sources(&mut ctx);
        // add(src, src) has equal operands: both accept.
        assert_eq!(matcher.matches(&ctx, add_op), vec![0, 1]);
    }

    #[test]
    fn predicates_fail_totally_on_unresolvable_positions() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let src = ctx.op_name("t", "src");
        let preds = vec![
            // Path walks through operand 5, which does not exist.
            Pred::OperandCount { path: vec![5], count: 1 },
            Pred::OperandDef { path: vec![5], index: 0, name: src },
        ];
        let set: PatternSet = [program(add, preds)].into_iter().collect();
        let matcher = PatternMatcher::compile(set.patterns());
        let (add_op, _) = add_of_sources(&mut ctx);
        assert!(matcher.matches(&ctx, add_op).is_empty());
    }

    #[test]
    fn attr_predicate_requires_exact_interned_value() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let key = ctx.symbol("flag");
        let five = ctx.i64_attr(5);
        let six = ctx.i64_attr(6);
        let p5 = program(add, vec![Pred::AttrEq { path: vec![], key, value: five }]);
        let p6 = program(add, vec![Pred::AttrEq { path: vec![], key, value: six }]);
        let set: PatternSet = [p5, p6].into_iter().collect();
        let matcher = PatternMatcher::compile(set.patterns());

        let (add_op, _) = add_of_sources(&mut ctx);
        assert!(matcher.matches(&ctx, add_op).is_empty(), "no attribute at all");
        ctx.set_attr(add_op, key, five);
        assert_eq!(matcher.matches(&ctx, add_op), vec![0]);
    }

    #[test]
    fn compile_count_is_observable() {
        let before = matcher_compile_count();
        let set = PatternSet::new();
        let _ = PatternMatcher::compile(set.patterns());
        // `>=`: tests in other modules may compile matchers concurrently.
        assert!(matcher_compile_count() > before);
    }
}
