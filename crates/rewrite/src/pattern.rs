//! The [`RewritePattern`] trait and the [`Rewriter`] handed to patterns.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use irdl_ir::{BlockRef, ChangeJournal, Context, OpName, OperationState, OpRef, Type, Value};

use crate::matcher::{MatchProgram, PatternMatcher};

/// A rewrite pattern rooted at one operation.
///
/// Patterns are registered behind `Arc` and shared across threads by the
/// batch pipeline, so implementations must be `Send + Sync` — in practice,
/// immutable match/rewrite logic plus configuration data.
pub trait RewritePattern: Send + Sync {
    /// The operation name this pattern is anchored on, or `None` to try it
    /// on every operation.
    fn root(&self) -> Option<OpName> {
        None
    }

    /// Relative priority; higher-benefit patterns are tried first.
    fn benefit(&self) -> usize {
        1
    }

    /// A human-readable name for debugging and statistics.
    fn name(&self) -> &str {
        "<anonymous>"
    }

    /// Attempts to match at `rewriter.root()` and perform the rewrite.
    ///
    /// Returns `true` if the IR was changed. Patterns must perform all
    /// mutation through the [`Rewriter`] so the driver can track changes.
    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool;

    /// Lowers this pattern's match side to a predicate program for the
    /// shared [`PatternMatcher`] automaton, or `None` if the match logic
    /// is opaque Rust code.
    ///
    /// A returned program must be a conservative approximation: it may
    /// accept operations [`RewritePattern::match_and_rewrite`] then
    /// declines, but must accept every operation it would rewrite —
    /// a false negative changes driver semantics. When in doubt return
    /// `None`; the pattern is then tried at every op matching
    /// [`RewritePattern::root`], exactly as under a per-pattern scan.
    fn match_program(&self) -> Option<MatchProgram> {
        None
    }
}

/// An ordered collection of patterns, sorted by descending benefit and
/// indexed by root operation name.
///
/// The driver asks for the patterns applicable to one operation; the index
/// answers without scanning patterns anchored elsewhere. Because the sort
/// is stable, position in `patterns` *is* priority order, so candidate
/// lists (which hold ascending positions) merge back into exactly the
/// order a full scan would have produced.
#[derive(Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Arc<dyn RewritePattern>>,
    /// Positions of patterns anchored on a specific op name (ascending).
    anchored: HashMap<OpName, Vec<usize>>,
    /// Positions of patterns that try every operation (ascending).
    anchorless: Vec<usize>,
    /// Lazily-compiled shared matcher automaton; reset by [`PatternSet::add`],
    /// so the artifact always reflects the current catalog. Cloning a set
    /// shares the already-compiled automaton.
    matcher: OnceLock<Arc<PatternMatcher>>,
}

impl std::fmt::Debug for PatternSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.patterns.iter().map(|p| p.name()).collect();
        f.debug_tuple("PatternSet").field(&names).finish()
    }
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern, keeping the set sorted by benefit.
    pub fn add(&mut self, pattern: Arc<dyn RewritePattern>) {
        self.patterns.push(pattern);
        self.patterns.sort_by_key(|p| std::cmp::Reverse(p.benefit()));
        self.reindex();
        // The catalog changed; any compiled automaton is stale.
        self.matcher = OnceLock::new();
    }

    fn reindex(&mut self) {
        self.anchored.clear();
        self.anchorless.clear();
        for (i, pattern) in self.patterns.iter().enumerate() {
            match pattern.root() {
                Some(root) => self.anchored.entry(root).or_default().push(i),
                None => self.anchorless.push(i),
            }
        }
    }

    /// The patterns, highest benefit first.
    pub fn patterns(&self) -> &[Arc<dyn RewritePattern>] {
        &self.patterns
    }

    /// The patterns applicable to an operation named `name` — those
    /// anchored on `name` plus the anchorless ones — highest benefit first
    /// (ties in registration order, matching [`PatternSet::patterns`]).
    pub fn candidates(&self, name: OpName) -> impl Iterator<Item = &dyn RewritePattern> + '_ {
        let anchored = self.anchored.get(&name).map_or(&[][..], Vec::as_slice);
        MergeAscending { a: anchored, b: &self.anchorless }
            .map(move |i| &*self.patterns[i])
    }

    /// The positions (into [`PatternSet::patterns`]) of the patterns
    /// applicable to an operation named `name`, ascending — the index view
    /// behind [`PatternSet::candidates`].
    pub fn candidate_positions(&self, name: OpName) -> impl Iterator<Item = usize> + '_ {
        let anchored = self.anchored.get(&name).map_or(&[][..], Vec::as_slice);
        MergeAscending { a: anchored, b: &self.anchorless }
    }

    /// The compiled matcher automaton for this catalog, building it on
    /// first use. The artifact is cached (and shared by clones), so
    /// repeated drives over the same set compile exactly once.
    pub fn matcher(&self) -> Arc<PatternMatcher> {
        self.matcher
            .get_or_init(|| Arc::new(PatternMatcher::compile(&self.patterns)))
            .clone()
    }

    /// Eagerly compiles the matcher automaton. Call at seal time — e.g.
    /// before fanning a batch out to workers — so compilation happens once
    /// up front instead of racing lazily on first use.
    pub fn seal(&self) {
        let _ = self.matcher();
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Merges two ascending position lists into one ascending stream.
struct MergeAscending<'a> {
    a: &'a [usize],
    b: &'a [usize],
}

impl Iterator for MergeAscending<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let take_a = match (self.a.first(), self.b.first()) {
            (Some(x), Some(y)) => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let list = if take_a { &mut self.a } else { &mut self.b };
        let item = list[0];
        *list = &list[1..];
        Some(item)
    }
}

impl FromIterator<Arc<dyn RewritePattern>> for PatternSet {
    fn from_iter<I: IntoIterator<Item = Arc<dyn RewritePattern>>>(iter: I) -> Self {
        let mut set = PatternSet::new();
        set.patterns.extend(iter);
        set.patterns.sort_by_key(|p| std::cmp::Reverse(p.benefit()));
        set.reindex();
        set
    }
}

/// The mutation interface handed to patterns: all IR changes made during a
/// rewrite go through it so they land in the [`ChangeJournal`], which the
/// driver consumes both for worklist maintenance and for incremental
/// re-verification. Mutating the IR behind the rewriter's back (via
/// [`Rewriter::ctx_mut`]) is possible for interning but must not be used
/// for structural changes — unjournaled changes are invisible to the
/// incremental verifier.
pub struct Rewriter<'a> {
    ctx: &'a mut Context,
    root: OpRef,
    journal: &'a mut ChangeJournal,
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter anchored on `root`, recording every mutation
    /// into `journal` (on top of whatever it already holds).
    pub fn new(ctx: &'a mut Context, root: OpRef, journal: &'a mut ChangeJournal) -> Self {
        Rewriter { ctx, root, journal }
    }

    /// The operation the pattern is anchored on.
    pub fn root(&self) -> OpRef {
        self.root
    }

    /// Read access to the context.
    pub fn ctx(&self) -> &Context {
        self.ctx
    }

    /// Mutable access to the context (for interning types/attributes).
    pub fn ctx_mut(&mut self) -> &mut Context {
        self.ctx
    }

    /// Read access to the journal accumulated so far.
    pub fn journal(&self) -> &ChangeJournal {
        self.journal
    }

    /// Creates an operation and inserts it immediately before the root.
    pub fn insert_before_root(&mut self, state: OperationState) -> OpRef {
        let root = self.root;
        self.insert_before(root, state)
    }

    /// Creates an operation and inserts it immediately before `anchor`.
    pub fn insert_before(&mut self, anchor: OpRef, state: OperationState) -> OpRef {
        let op = self.ctx.create_op(state);
        self.ctx.insert_op_before(anchor, op);
        if let Some(block) = op.parent_block(self.ctx) {
            self.journal.note_block(block);
        }
        self.journal.note_created(self.ctx, op);
        op
    }

    /// Creates an operation and inserts it immediately after `anchor`.
    ///
    /// `anchor` itself is journaled as modified: if it was the last op in
    /// its block, it no longer is, which can flip the terminator-placement
    /// rules for it.
    pub fn insert_after(&mut self, anchor: OpRef, state: OperationState) -> OpRef {
        let op = self.ctx.create_op(state);
        self.ctx.insert_op_after(anchor, op);
        if let Some(block) = op.parent_block(self.ctx) {
            self.journal.note_block(block);
        }
        self.journal.note_modified(anchor);
        self.journal.note_created(self.ctx, op);
        op
    }

    /// Creates an operation and appends it at the end of `block`.
    ///
    /// The previous last op (if any) is journaled as modified — it lost
    /// its "last in block" status.
    pub fn append(&mut self, block: BlockRef, state: OperationState) -> OpRef {
        if let Some(&last) = block.ops(self.ctx).last() {
            self.journal.note_modified(last);
        }
        let op = self.ctx.create_op(state);
        self.ctx.append_op(block, op);
        self.journal.note_block(block);
        self.journal.note_created(self.ctx, op);
        op
    }

    /// Rewires operand `index` of `op` to `value`.
    pub fn set_operand(&mut self, op: OpRef, index: usize, value: Value) {
        self.ctx.set_operand(op, index, value);
        self.journal.note_modified(op);
    }

    /// Replaces every use of `old` with `new`, journaling each rewired
    /// user as modified.
    pub fn replace_all_uses(&mut self, old: Value, new: Value) {
        for u in self.ctx.value_uses(old) {
            self.journal.note_modified(u.op);
        }
        self.ctx.replace_all_uses(old, new);
    }

    /// Detaches `op` from its current position and re-inserts it before
    /// `anchor`.
    ///
    /// Both blocks, the op itself, and every user of its results are
    /// journaled — a move can break the dominance of uses that were valid
    /// at the old position.
    pub fn move_before(&mut self, op: OpRef, anchor: OpRef) {
        if let Some(old_block) = op.parent_block(self.ctx) {
            if let Some(&last) = old_block.ops(self.ctx).last() {
                if last == op {
                    // The op below the moved one becomes the new last.
                    let ops = old_block.ops(self.ctx);
                    if ops.len() > 1 {
                        self.journal.note_modified(ops[ops.len() - 2]);
                    }
                }
            }
            self.journal.note_block(old_block);
            self.ctx.detach_op(op);
        }
        self.ctx.insert_op_before(anchor, op);
        if let Some(block) = op.parent_block(self.ctx) {
            self.journal.note_block(block);
        }
        self.journal.note_moved(self.ctx, op);
        for i in 0..op.num_results(self.ctx) {
            for u in self.ctx.value_uses(op.result(self.ctx, i)) {
                self.journal.note_modified(u.op);
            }
        }
    }

    /// Creates a block with the given argument types and inserts it after
    /// `anchor` in the same region. The region is journaled as CFG-dirty:
    /// growing a region past one block changes which structural rules
    /// apply to *all* of its blocks.
    pub fn insert_block_after(
        &mut self,
        anchor: BlockRef,
        arg_types: impl IntoIterator<Item = Type>,
    ) -> BlockRef {
        let block = self.ctx.create_block(arg_types);
        self.ctx.insert_block_after(anchor, block);
        if let Some(region) = block.parent_region(self.ctx) {
            self.journal.note_region_blocks_changed(region);
        }
        self.journal.note_block(block);
        block
    }

    /// Replaces every use of the root's results with `values` and erases
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the root's result count.
    pub fn replace_root(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.root.num_results(self.ctx),
            "replacement value count must match the root's result count"
        );
        for (i, value) in values.iter().enumerate() {
            let old = self.root.result(self.ctx, i);
            self.replace_all_uses(old, *value);
        }
        let root = self.root;
        self.erase(root);
    }

    /// Erases `op` (which must be use-free), journaling the whole erased
    /// subtree first so no dangling reference survives in the journal.
    pub fn erase(&mut self, op: OpRef) {
        self.journal.note_erase_subtree(self.ctx, op);
        self.ctx.erase_op(op);
    }

    /// Erases `op` if none of its results have uses; returns whether it was
    /// erased.
    pub fn erase_if_unused(&mut self, op: OpRef) -> bool {
        let unused = (0..op.num_results(self.ctx))
            .all(|i| op.result(self.ctx, i).is_unused(self.ctx));
        if unused {
            self.erase(op);
        }
        unused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl RewritePattern for Trivial {
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    struct Better;
    impl RewritePattern for Better {
        fn benefit(&self) -> usize {
            10
        }
        fn name(&self) -> &str {
            "better"
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    #[test]
    fn pattern_set_orders_by_benefit() {
        let mut set = PatternSet::new();
        set.add(Arc::new(Trivial));
        set.add(Arc::new(Better));
        assert_eq!(set.patterns()[0].name(), "better");
        assert_eq!(set.len(), 2);
    }

    /// A configurable pattern for ordering tests.
    struct Named {
        name: &'static str,
        benefit: usize,
        root: Option<OpName>,
    }
    impl RewritePattern for Named {
        fn root(&self) -> Option<OpName> {
            self.root
        }
        fn benefit(&self) -> usize {
            self.benefit
        }
        fn name(&self) -> &str {
            self.name
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    /// `candidates()` must yield descending benefit, ties in registration
    /// order, with anchored and anchorless patterns interleaved exactly as
    /// a full scan of `patterns()` would visit them.
    #[test]
    fn candidates_order_is_benefit_desc_with_stable_ties() {
        let mut ctx = Context::new();
        let add = ctx.op_name("t", "add");
        let mul = ctx.op_name("t", "mul");
        let mut set = PatternSet::new();
        set.add(Arc::new(Named { name: "add-low-a", benefit: 1, root: Some(add) }));
        set.add(Arc::new(Named { name: "any-high", benefit: 9, root: None }));
        set.add(Arc::new(Named { name: "add-low-b", benefit: 1, root: Some(add) }));
        set.add(Arc::new(Named { name: "add-high", benefit: 9, root: Some(add) }));
        set.add(Arc::new(Named { name: "mul-mid", benefit: 5, root: Some(mul) }));

        let order: Vec<&str> = set.candidates(add).map(|p| p.name()).collect();
        // Benefit 9 ties resolve in registration order (any-high first),
        // mul-anchored patterns never appear, benefit-1 ties keep
        // registration order.
        assert_eq!(order, ["any-high", "add-high", "add-low-a", "add-low-b"]);

        let order: Vec<&str> = set.candidates(mul).map(|p| p.name()).collect();
        assert_eq!(order, ["any-high", "mul-mid"]);

        // The candidate stream is a filtered view of the full priority
        // scan: relative order must match `patterns()`.
        let full: Vec<&str> = set.patterns().iter().map(|p| p.name()).collect();
        let filtered: Vec<&str> =
            full.iter().copied().filter(|n| order.contains(n)).collect();
        assert_eq!(order, filtered);
    }

    #[test]
    fn rewriter_replace_root() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let block = ctx.create_block([]);
        let src = ctx.op_name("t", "src");
        let a = ctx.create_op(OperationState::new(src).add_result_types([f32]));
        let b = ctx.create_op(OperationState::new(src).add_result_types([f32]));
        ctx.append_op(block, a);
        ctx.append_op(block, b);
        let va = a.result(&ctx, 0);
        let vb = b.result(&ctx, 0);
        let sink = ctx.op_name("t", "sink");
        let user = ctx.create_op(OperationState::new(sink).add_operands([va]));
        ctx.append_op(block, user);

        let mut journal = ChangeJournal::new();
        let mut rewriter = Rewriter::new(&mut ctx, a, &mut journal);
        rewriter.replace_root(&[vb]);
        assert_eq!(user.operand(&ctx, 0), vb);
        assert!(!a.is_live(&ctx));
        assert_eq!(journal.modified(), &[user], "the rewired user is journaled");
        assert_eq!(journal.erased_ops(), 1);
        assert_eq!(journal.dirty_blocks(), &[block], "the erasure site is dirty");
    }

    #[test]
    fn rewriter_insertions_journal_displaced_neighbours() {
        let mut ctx = Context::new();
        let block = ctx.create_block([]);
        let src = ctx.op_name("t", "src");
        let first = ctx.create_op(OperationState::new(src));
        ctx.append_op(block, first);

        let mut journal = ChangeJournal::new();
        let mut rewriter = Rewriter::new(&mut ctx, first, &mut journal);
        // Appending displaces `first` from its last-in-block position.
        let appended = rewriter.append(block, OperationState::new(src));
        assert_eq!(rewriter.journal().created(), &[appended]);
        assert_eq!(rewriter.journal().modified(), &[first]);
        // insert_after displaces its anchor the same way.
        let after = rewriter.insert_after(appended, OperationState::new(src));
        assert_eq!(rewriter.journal().created(), &[appended, after]);
        assert_eq!(rewriter.journal().modified(), &[first, appended]);
        // insert_before displaces nobody.
        let before = rewriter.insert_before(first, OperationState::new(src));
        assert_eq!(rewriter.journal().created(), &[appended, after, before]);
        assert_eq!(rewriter.journal().modified(), &[first, appended]);
        assert_eq!(block.ops(&ctx), &[before, first, appended, after]);
    }
}
