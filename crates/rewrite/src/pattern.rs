//! The [`RewritePattern`] trait and the [`Rewriter`] handed to patterns.

use std::collections::HashMap;
use std::sync::Arc;

use irdl_ir::{Context, OpName, OperationState, OpRef, Value};

/// A rewrite pattern rooted at one operation.
///
/// Patterns are registered behind `Arc` and shared across threads by the
/// batch pipeline, so implementations must be `Send + Sync` — in practice,
/// immutable match/rewrite logic plus configuration data.
pub trait RewritePattern: Send + Sync {
    /// The operation name this pattern is anchored on, or `None` to try it
    /// on every operation.
    fn root(&self) -> Option<OpName> {
        None
    }

    /// Relative priority; higher-benefit patterns are tried first.
    fn benefit(&self) -> usize {
        1
    }

    /// A human-readable name for debugging and statistics.
    fn name(&self) -> &str {
        "<anonymous>"
    }

    /// Attempts to match at `rewriter.root()` and perform the rewrite.
    ///
    /// Returns `true` if the IR was changed. Patterns must perform all
    /// mutation through the [`Rewriter`] so the driver can track changes.
    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool;
}

/// An ordered collection of patterns, sorted by descending benefit and
/// indexed by root operation name.
///
/// The driver asks for the patterns applicable to one operation; the index
/// answers without scanning patterns anchored elsewhere. Because the sort
/// is stable, position in `patterns` *is* priority order, so candidate
/// lists (which hold ascending positions) merge back into exactly the
/// order a full scan would have produced.
#[derive(Clone, Default)]
pub struct PatternSet {
    patterns: Vec<Arc<dyn RewritePattern>>,
    /// Positions of patterns anchored on a specific op name (ascending).
    anchored: HashMap<OpName, Vec<usize>>,
    /// Positions of patterns that try every operation (ascending).
    anchorless: Vec<usize>,
}

impl std::fmt::Debug for PatternSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.patterns.iter().map(|p| p.name()).collect();
        f.debug_tuple("PatternSet").field(&names).finish()
    }
}

impl PatternSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern, keeping the set sorted by benefit.
    pub fn add(&mut self, pattern: Arc<dyn RewritePattern>) {
        self.patterns.push(pattern);
        self.patterns.sort_by_key(|p| std::cmp::Reverse(p.benefit()));
        self.reindex();
    }

    fn reindex(&mut self) {
        self.anchored.clear();
        self.anchorless.clear();
        for (i, pattern) in self.patterns.iter().enumerate() {
            match pattern.root() {
                Some(root) => self.anchored.entry(root).or_default().push(i),
                None => self.anchorless.push(i),
            }
        }
    }

    /// The patterns, highest benefit first.
    pub fn patterns(&self) -> &[Arc<dyn RewritePattern>] {
        &self.patterns
    }

    /// The patterns applicable to an operation named `name` — those
    /// anchored on `name` plus the anchorless ones — highest benefit first
    /// (ties in registration order, matching [`PatternSet::patterns`]).
    pub fn candidates(&self, name: OpName) -> impl Iterator<Item = &dyn RewritePattern> + '_ {
        let anchored = self.anchored.get(&name).map_or(&[][..], Vec::as_slice);
        MergeAscending { a: anchored, b: &self.anchorless }
            .map(move |i| &*self.patterns[i])
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Merges two ascending position lists into one ascending stream.
struct MergeAscending<'a> {
    a: &'a [usize],
    b: &'a [usize],
}

impl Iterator for MergeAscending<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let take_a = match (self.a.first(), self.b.first()) {
            (Some(x), Some(y)) => x < y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let list = if take_a { &mut self.a } else { &mut self.b };
        let item = list[0];
        *list = &list[1..];
        Some(item)
    }
}

impl FromIterator<Arc<dyn RewritePattern>> for PatternSet {
    fn from_iter<I: IntoIterator<Item = Arc<dyn RewritePattern>>>(iter: I) -> Self {
        let mut set = PatternSet::new();
        set.patterns.extend(iter);
        set.patterns.sort_by_key(|p| std::cmp::Reverse(p.benefit()));
        set.reindex();
        set
    }
}

/// The mutation interface handed to patterns: all IR changes made during a
/// rewrite go through it so the driver can maintain its worklist.
pub struct Rewriter<'a> {
    ctx: &'a mut Context,
    root: OpRef,
    /// Operations created during this rewrite.
    pub(crate) added: Vec<OpRef>,
    /// Operations erased during this rewrite.
    pub(crate) erased: Vec<OpRef>,
    /// Values whose use lists changed (replacement targets), so the driver
    /// can revisit their users even when no new op was created.
    pub(crate) touched: Vec<Value>,
}

impl<'a> Rewriter<'a> {
    pub(crate) fn new(ctx: &'a mut Context, root: OpRef) -> Self {
        Rewriter { ctx, root, added: Vec::new(), erased: Vec::new(), touched: Vec::new() }
    }

    /// The operation the pattern is anchored on.
    pub fn root(&self) -> OpRef {
        self.root
    }

    /// Read access to the context.
    pub fn ctx(&self) -> &Context {
        self.ctx
    }

    /// Mutable access to the context (for interning types/attributes).
    pub fn ctx_mut(&mut self) -> &mut Context {
        self.ctx
    }

    /// Creates an operation and inserts it immediately before the root.
    pub fn insert_before_root(&mut self, state: OperationState) -> OpRef {
        let op = self.ctx.create_op(state);
        self.ctx.insert_op_before(self.root, op);
        self.added.push(op);
        op
    }

    /// Replaces every use of the root's results with `values` and erases
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the root's result count.
    pub fn replace_root(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.root.num_results(self.ctx),
            "replacement value count must match the root's result count"
        );
        for (i, value) in values.iter().enumerate() {
            let old = self.root.result(self.ctx, i);
            self.ctx.replace_all_uses(old, *value);
            self.touched.push(*value);
        }
        let root = self.root;
        self.erase(root);
    }

    /// Erases `op` (which must be use-free).
    pub fn erase(&mut self, op: OpRef) {
        self.ctx.erase_op(op);
        self.erased.push(op);
    }

    /// Erases `op` if none of its results have uses; returns whether it was
    /// erased.
    pub fn erase_if_unused(&mut self, op: OpRef) -> bool {
        let unused = (0..op.num_results(self.ctx))
            .all(|i| op.result(self.ctx, i).is_unused(self.ctx));
        if unused {
            self.erase(op);
        }
        unused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl RewritePattern for Trivial {
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    struct Better;
    impl RewritePattern for Better {
        fn benefit(&self) -> usize {
            10
        }
        fn name(&self) -> &str {
            "better"
        }
        fn match_and_rewrite(&self, _rewriter: &mut Rewriter<'_>) -> bool {
            false
        }
    }

    #[test]
    fn pattern_set_orders_by_benefit() {
        let mut set = PatternSet::new();
        set.add(Arc::new(Trivial));
        set.add(Arc::new(Better));
        assert_eq!(set.patterns()[0].name(), "better");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn rewriter_replace_root() {
        let mut ctx = Context::new();
        let f32 = ctx.f32_type();
        let block = ctx.create_block([]);
        let src = ctx.op_name("t", "src");
        let a = ctx.create_op(OperationState::new(src).add_result_types([f32]));
        let b = ctx.create_op(OperationState::new(src).add_result_types([f32]));
        ctx.append_op(block, a);
        ctx.append_op(block, b);
        let va = a.result(&ctx, 0);
        let vb = b.result(&ctx, 0);
        let sink = ctx.op_name("t", "sink");
        let user = ctx.create_op(OperationState::new(sink).add_operands([va]));
        ctx.append_op(block, user);

        let mut rewriter = Rewriter::new(&mut ctx, a);
        rewriter.replace_root(&[vb]);
        assert_eq!(user.operand(&ctx, 0), vb);
        assert!(!a.is_live(&ctx));
    }
}
