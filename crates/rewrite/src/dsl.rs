//! A declarative, textual pattern format.
//!
//! Dialects in this reproduction are loaded from IRDL text at runtime; this
//! module lets *rewrites* be loaded the same way (the "dynamic pattern
//! rewriting support" the paper pairs with IRDL in §3). A pattern matches a
//! DAG of operations rooted at the last operation of its `Match` block and
//! replaces it with the ops of its `Rewrite` block:
//!
//! ```text
//! Pattern conorm {
//!   Match {
//!     %n1 = cmath.norm(%p)
//!     %n2 = cmath.norm(%q)
//!     %r = arith.mulf(%n1, %n2)
//!   }
//!   Rewrite {
//!     %m = cmath.mul(%p, %q) : typeof(%p)
//!     %r2 = cmath.norm(%m) : typeof(%r)
//!     Replace %r with %r2
//!   }
//! }
//! ```
//!
//! Result types of new operations are written `typeof(%v)`, referencing any
//! matched or newly created value. Interior matched operations are erased
//! when the rewrite leaves them without uses.
//!
//! Both match and rewrite ops take an optional attribute clause after the
//! operand list — `cmath.norm(%p) {fast = true}` — requiring (or setting)
//! exact attribute values: integer, string, or boolean literals.
//!
//! Because a declarative pattern's match side is fully structural, it also
//! lowers to a [`MatchProgram`] (see [`crate::matcher`]): the driver can
//! test the whole catalog against an op with one automaton evaluation
//! instead of one `try_match` walk per pattern.

use std::collections::HashMap;

use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::lexer::{lex, Spanned, Token};
use irdl_ir::{Attribute, Context, OpName, OperationState, OpRef, Symbol, Value};

use crate::matcher::{MatchProgram, OpPath, Pred, ValuePos};
use crate::pattern::{PatternSet, RewritePattern, Rewriter};

/// One operation template in a `Match` block.
#[derive(Debug, Clone)]
struct MatchOp {
    /// Variable bound to the single result (`None` for zero-result ops).
    def: Option<String>,
    name: OpName,
    /// Operand variable names.
    operands: Vec<String>,
    /// Required attribute values from the `{key = literal, ...}` clause.
    attrs: Vec<(Symbol, Attribute)>,
}

/// One operation template in a `Rewrite` block.
#[derive(Debug, Clone)]
struct RewriteOp {
    def: Option<String>,
    name: OpName,
    operands: Vec<String>,
    /// Attributes to set on the materialized op.
    attrs: Vec<(Symbol, Attribute)>,
    /// `typeof(%v)` sources for each result (one per result).
    result_types_of: Vec<String>,
}

/// A parsed declarative pattern; implements [`RewritePattern`].
#[derive(Debug, Clone)]
pub struct DeclarativePattern {
    name: String,
    /// Relative priority from the optional `benefit N` clause (default 1).
    benefit: usize,
    match_ops: Vec<MatchOp>,
    rewrite_ops: Vec<RewriteOp>,
    /// `Replace <root def var> with <replacement var>`.
    replace_with: String,
}

/// Parses a sequence of `Pattern` definitions into a [`PatternSet`].
///
/// # Errors
///
/// Returns a diagnostic with an offset into `source` on malformed input.
pub fn parse_patterns(ctx: &mut Context, source: &str) -> Result<PatternSet> {
    let tokens = lex(source)?;
    let mut parser = DslParser { ctx, tokens, pos: 0 };
    let mut set = PatternSet::new();
    while parser.peek() != &Token::Eof {
        let pattern = parser.parse_pattern()?;
        set.add(std::sync::Arc::new(pattern));
    }
    Ok(set)
}

/// Parsed `[%def =] dialect.op(%operand, ...) [{key = value, ...}]`.
type OpHead = (Option<String>, OpName, Vec<String>, Vec<(Symbol, Attribute)>);

struct DslParser<'s, 'c> {
    ctx: &'c mut Context,
    tokens: Vec<Spanned<'s>>,
    pos: usize,
}

impl<'s, 'c> DslParser<'s, 'c> {
    fn peek(&self) -> &Token<'s> {
        &self.tokens[self.pos].token
    }

    /// Takes the current token and advances (consumed slots are backfilled
    /// with `Eof` and never re-read).
    fn bump(&mut self) -> Token<'s> {
        let tok = std::mem::replace(&mut self.tokens[self.pos].token, Token::Eof);
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.tokens[self.pos].span.start, message)
    }

    fn expect(&mut self, token: &Token<'_>) -> Result<()> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                token.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Token::Ident(s) if *s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn expect_value(&mut self) -> Result<String> {
        match self.bump() {
            Token::ValueId(name) => Ok(name.to_string()),
            other => Err(self.error(format!("expected `%name`, found {}", other.describe()))),
        }
    }

    fn parse_pattern(&mut self) -> Result<DeclarativePattern> {
        self.expect_keyword("Pattern")?;
        let name = match self.bump() {
            Token::Ident(s) => s.to_string(),
            other => {
                return Err(self.error(format!("expected pattern name, found {}", other.describe())))
            }
        };
        // Optional `benefit N` clause: higher-benefit patterns are tried
        // first by the driver.
        let mut benefit = 1usize;
        if matches!(self.peek(), Token::Ident(s) if *s == "benefit") {
            self.bump();
            benefit = match self.bump() {
                Token::Integer { value, .. } if value >= 1 && value <= i128::from(u32::MAX) => {
                    value as usize
                }
                other => {
                    return Err(self.error(format!(
                        "expected a positive benefit, found {}",
                        other.describe()
                    )))
                }
            };
        }
        self.expect(&Token::LBrace)?;
        self.expect_keyword("Match")?;
        self.expect(&Token::LBrace)?;
        let mut match_ops = Vec::new();
        while self.peek() != &Token::RBrace {
            match_ops.push(self.parse_match_op()?);
        }
        self.expect(&Token::RBrace)?;
        if match_ops.is_empty() {
            return Err(self.error("Match block must contain at least one operation"));
        }
        self.expect_keyword("Rewrite")?;
        self.expect(&Token::LBrace)?;
        let mut rewrite_ops = Vec::new();
        let mut replace_with = None;
        while self.peek() != &Token::RBrace {
            if matches!(self.peek(), Token::Ident(s) if *s == "Replace") {
                self.bump();
                let target = self.expect_value()?;
                let root_def = match_ops
                    .last()
                    .and_then(|op| op.def.clone())
                    .ok_or_else(|| self.error("root operation binds no result"))?;
                if target != root_def {
                    return Err(self.error(format!(
                        "Replace target `%{target}` must be the root's result `%{root_def}`"
                    )));
                }
                self.expect_keyword("with")?;
                replace_with = Some(self.expect_value()?);
            } else {
                rewrite_ops.push(self.parse_rewrite_op()?);
            }
        }
        self.expect(&Token::RBrace)?;
        self.expect(&Token::RBrace)?;
        let replace_with = replace_with
            .ok_or_else(|| self.error("Rewrite block must end with a `Replace ... with ...`"))?;
        // Every variable the rewrite reads must be bound by the match (an
        // operand or result var) or defined by an earlier rewrite op, so a
        // failed lookup can never occur mid-rewrite (which would leave
        // partially materialized IR behind).
        let mut bound: Vec<&str> = Vec::new();
        for op in &match_ops {
            bound.extend(op.operands.iter().map(String::as_str));
            bound.extend(op.def.as_deref());
        }
        for op in &rewrite_ops {
            for var in op.operands.iter().chain(op.result_types_of.iter()) {
                if !bound.contains(&var.as_str()) {
                    return Err(self.error(format!(
                        "rewrite references `%{var}`, which neither the match nor an \
                         earlier rewrite op binds"
                    )));
                }
            }
            bound.extend(op.def.as_deref());
        }
        if !bound.contains(&replace_with.as_str()) {
            return Err(self.error(format!(
                "Replace uses `%{replace_with}`, which nothing binds"
            )));
        }
        Ok(DeclarativePattern { name, benefit, match_ops, rewrite_ops, replace_with })
    }

    /// Parses the optional `{key = literal, ...}` attribute clause.
    fn parse_attr_clause(&mut self) -> Result<Vec<(Symbol, Attribute)>> {
        let mut attrs = Vec::new();
        if self.peek() != &Token::LBrace {
            return Ok(attrs);
        }
        self.bump();
        while self.peek() != &Token::RBrace {
            let key = match self.bump() {
                Token::Ident(s) => self.ctx.symbol(s),
                other => {
                    return Err(self.error(format!(
                        "expected attribute name, found {}",
                        other.describe()
                    )))
                }
            };
            self.expect(&Token::Equals)?;
            let value = match self.bump() {
                Token::Integer { value, .. }
                    if value >= i128::from(i64::MIN) && value <= i128::from(i64::MAX) =>
                {
                    self.ctx.i64_attr(value as i64)
                }
                Token::Str(s) => self.ctx.string_attr(s.into_owned()),
                Token::Ident("true") => self.ctx.bool_attr(true),
                Token::Ident("false") => self.ctx.bool_attr(false),
                other => {
                    return Err(self.error(format!(
                        "expected an integer, string, or boolean attribute value, found {}",
                        other.describe()
                    )))
                }
            };
            attrs.push((key, value));
            if self.peek() != &Token::Comma {
                break;
            }
            self.bump();
        }
        self.expect(&Token::RBrace)?;
        Ok(attrs)
    }

    fn parse_op_head(&mut self) -> Result<OpHead> {
        let def = if matches!(self.peek(), Token::ValueId(_)) {
            let def = self.expect_value()?;
            self.expect(&Token::Equals)?;
            Some(def)
        } else {
            None
        };
        let full = match self.bump() {
            Token::Ident(s) if s.contains('.') => s,
            other => {
                return Err(self.error(format!(
                    "expected `dialect.op`, found {}",
                    other.describe()
                )))
            }
        };
        let (dialect, op) = full.split_once('.').expect("checked above");
        let name = self.ctx.op_name(dialect, op);
        self.expect(&Token::LParen)?;
        let mut operands = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                operands.push(self.expect_value()?);
                if !matches!(self.peek(), Token::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&Token::RParen)?;
        let attrs = self.parse_attr_clause()?;
        Ok((def, name, operands, attrs))
    }

    fn parse_match_op(&mut self) -> Result<MatchOp> {
        let (def, name, operands, attrs) = self.parse_op_head()?;
        Ok(MatchOp { def, name, operands, attrs })
    }

    fn parse_rewrite_op(&mut self) -> Result<RewriteOp> {
        let (def, name, operands, attrs) = self.parse_op_head()?;
        let mut result_types_of = Vec::new();
        if self.peek() == &Token::Colon {
            self.bump();
            loop {
                self.expect_keyword("typeof")?;
                self.expect(&Token::LParen)?;
                result_types_of.push(self.expect_value()?);
                self.expect(&Token::RParen)?;
                if self.peek() != &Token::Comma {
                    break;
                }
                self.bump();
            }
        }
        if def.is_some() && result_types_of.is_empty() {
            return Err(self.error(
                "rewrite op with a result needs a `: typeof(%v)` result type",
            ));
        }
        Ok(RewriteOp { def, name, operands, attrs, result_types_of })
    }
}

impl DeclarativePattern {
    /// Attempts to match the pattern DAG rooted at `root`, returning value
    /// and operation bindings on success.
    fn try_match(
        &self,
        ctx: &Context,
        root: OpRef,
    ) -> Option<(HashMap<String, Value>, Vec<OpRef>)> {
        let mut values: HashMap<String, Value> = HashMap::new();
        let mut ops: Vec<Option<OpRef>> = vec![None; self.match_ops.len()];
        let root_index = self.match_ops.len() - 1;
        if !self.match_op_at(ctx, root_index, root, &mut values, &mut ops) {
            return None;
        }
        let matched = ops.into_iter().map(|o| o.expect("all ops bound on success")).collect();
        Some((values, matched))
    }

    fn match_op_at(
        &self,
        ctx: &Context,
        index: usize,
        candidate: OpRef,
        values: &mut HashMap<String, Value>,
        ops: &mut Vec<Option<OpRef>>,
    ) -> bool {
        if let Some(bound) = ops[index] {
            return bound == candidate;
        }
        let template = &self.match_ops[index];
        if candidate.name(ctx) != template.name {
            return false;
        }
        if candidate.num_operands(ctx) != template.operands.len() {
            return false;
        }
        let expected_results = usize::from(template.def.is_some());
        if candidate.num_results(ctx) != expected_results {
            return false;
        }
        for (key, value) in &template.attrs {
            if candidate.attr_sym(ctx, *key) != Some(*value) {
                return false;
            }
        }
        ops[index] = Some(candidate);
        for (slot, var) in template.operands.iter().enumerate() {
            let actual = candidate.operand(ctx, slot);
            // Is this variable the result of another match op?
            if let Some(producer_index) =
                self.match_ops.iter().position(|m| m.def.as_deref() == Some(var.as_str()))
            {
                if producer_index != index {
                    let Some(def_op) = actual.defining_op(ctx) else {
                        ops[index] = None;
                        return false;
                    };
                    if !self.match_op_at(ctx, producer_index, def_op, values, ops) {
                        ops[index] = None;
                        return false;
                    }
                    values.insert(var.clone(), actual);
                    continue;
                }
            }
            match values.get(var) {
                Some(bound) if *bound != actual => {
                    ops[index] = None;
                    return false;
                }
                _ => {
                    values.insert(var.clone(), actual);
                }
            }
        }
        if let Some(def) = &template.def {
            values.insert(def.clone(), candidate.result(ctx, 0));
        }
        true
    }

    /// Symbolically executes [`DeclarativePattern::match_op_at`] over match
    /// DAG *positions* instead of runtime ops, emitting one predicate per
    /// check the concrete walk performs. Because every emission corresponds
    /// to a check `try_match` makes on the same position, the resulting
    /// program accepts exactly the ops `try_match` accepts — a complete
    /// (not merely conservative) lowering.
    ///
    /// Returns `None` for shapes the position encoding cannot express
    /// (operand slots beyond `u8`); such patterns fall back to opaque
    /// dispatch.
    fn lower_op(
        &self,
        index: usize,
        path: OpPath,
        preds: &mut Vec<Pred>,
        values: &mut HashMap<String, ValuePos>,
        op_paths: &mut HashMap<usize, OpPath>,
    ) -> Option<()> {
        let template = &self.match_ops[index];
        // Mirrors the arity checks; `name` is checked by the caller (the
        // root dispatch map or the OperandDef edge leading here).
        preds.push(Pred::OperandCount {
            path: path.clone(),
            count: u8::try_from(template.operands.len()).ok()?,
        });
        preds.push(Pred::ResultCount {
            path: path.clone(),
            count: u8::from(template.def.is_some()),
        });
        for (key, value) in &template.attrs {
            preds.push(Pred::AttrEq { path: path.clone(), key: *key, value: *value });
        }
        op_paths.insert(index, path.clone());
        for (slot, var) in template.operands.iter().enumerate() {
            let slot = u8::try_from(slot).ok()?;
            let pos = ValuePos::Operand { path: path.clone(), index: slot };
            let producer = self
                .match_ops
                .iter()
                .position(|m| m.def.as_deref() == Some(var.as_str()))
                .filter(|&p| p != index);
            if let Some(producer_index) = producer {
                match op_paths.get(&producer_index) {
                    // Revisit: `bound == candidate` in the concrete walk.
                    // The producer binds exactly one result, so op equality
                    // is value equality of this operand with that result.
                    Some(bound_path) => preds.push(Pred::ValueEq {
                        a: pos.clone(),
                        b: ValuePos::Result { path: bound_path.clone() },
                    }),
                    None => {
                        preds.push(Pred::OperandDef {
                            path: path.clone(),
                            index: slot,
                            name: self.match_ops[producer_index].name,
                        });
                        let mut child = path.clone();
                        child.push(slot);
                        self.lower_op(producer_index, child, preds, values, op_paths)?;
                    }
                }
                values.insert(var.clone(), pos);
            } else {
                match values.get(var) {
                    Some(first) => {
                        preds.push(Pred::ValueEq { a: first.clone(), b: pos });
                    }
                    None => {
                        values.insert(var.clone(), pos);
                    }
                }
            }
        }
        if let Some(def) = &template.def {
            values.insert(def.clone(), ValuePos::Result { path });
        }
        Some(())
    }
}

impl RewritePattern for DeclarativePattern {
    fn root(&self) -> Option<OpName> {
        self.match_ops.last().map(|op| op.name)
    }

    fn benefit(&self) -> usize {
        self.benefit
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn match_program(&self) -> Option<MatchProgram> {
        let root_index = self.match_ops.len() - 1;
        let mut preds = Vec::new();
        self.lower_op(
            root_index,
            Vec::new(),
            &mut preds,
            &mut HashMap::new(),
            &mut HashMap::new(),
        )?;
        Some(MatchProgram { root: Some(self.match_ops[root_index].name), preds })
    }

    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
        let root = rewriter.root();
        let Some((mut values, matched)) = self.try_match(rewriter.ctx(), root) else {
            return false;
        };
        // Materialize the rewrite ops in order. Parse-time validation
        // guarantees every referenced variable is bound.
        for template in &self.rewrite_ops {
            let mut operands = Vec::with_capacity(template.operands.len());
            for var in &template.operands {
                let value = values[var];
                operands.push(value);
            }
            let mut result_types = Vec::with_capacity(template.result_types_of.len());
            for source in &template.result_types_of {
                let value = values[source];
                result_types.push(value.ty(rewriter.ctx()));
            }
            let mut state = OperationState::new(template.name)
                .add_operands(operands)
                .add_result_types(result_types);
            for (key, value) in &template.attrs {
                state = state.add_attribute(*key, *value);
            }
            let op = rewriter.insert_before_root(state);
            if let Some(def) = &template.def {
                let result = op.result(rewriter.ctx(), 0);
                values.insert(def.clone(), result);
            }
        }
        let replacement = values[&self.replace_with];
        rewriter.replace_root(&[replacement]);
        // Clean up interior matched ops that became dead (skip the root,
        // which replace_root already erased).
        for op in matched.into_iter().rev() {
            if op != root && op.is_live(rewriter.ctx()) {
                rewriter.erase_if_unused(op);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::rewrite_greedily;
    use irdl_ir::parse::parse_module;
    use irdl_ir::print::op_to_string;
    use irdl_ir::verify::verify_op;

    const CMATH: &str = r#"
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>
  Type complex { Parameters (elementType: !FloatType) }
  Operation mul {
    ConstraintVar (!T: !complex<!FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
  }
  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
  }
}
Dialect arith {
  Operation mulf {
    ConstraintVar (!T: !AnyFloat)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
  }
}
"#;

    const CONORM_PATTERN: &str = r#"
Pattern conorm {
  Match {
    %n1 = cmath.norm(%p)
    %n2 = cmath.norm(%q)
    %r = arith.mulf(%n1, %n2)
  }
  Rewrite {
    %m = cmath.mul(%p, %q) : typeof(%p)
    %r2 = cmath.norm(%m) : typeof(%r)
    Replace %r with %r2
  }
}
"#;

    /// The paper's Listing 1: |p|*|q| becomes |p*q|.
    #[test]
    fn conorm_optimization_from_listing1() {
        let mut ctx = Context::new();
        irdl::register_dialects(&mut ctx, CMATH).unwrap();
        let patterns = parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
        let module = parse_module(
            &mut ctx,
            r#"
            %p = "test.arg"() : () -> !cmath.complex<f32>
            %q = "test.arg"() : () -> !cmath.complex<f32>
            %norm_p = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
            %norm_q = "cmath.norm"(%q) : (!cmath.complex<f32>) -> f32
            %pq = "arith.mulf"(%norm_p, %norm_q) : (f32, f32) -> f32
            "test.return"(%pq) : (f32) -> ()
            "#,
        )
        .unwrap();
        verify_op(&ctx, module).unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 1);
        verify_op(&ctx, module).expect("optimized module verifies");
        let text = op_to_string(&ctx, module);
        assert!(text.contains("cmath.mul"), "{text}");
        assert!(!text.contains("arith.mulf"), "{text}");
        // Exactly one norm remains.
        assert_eq!(text.matches("cmath.norm").count(), 1, "{text}");
    }

    /// The pattern must not fire when the operands of mulf come from
    /// different computations than two norms.
    #[test]
    fn conorm_pattern_does_not_overfire() {
        let mut ctx = Context::new();
        irdl::register_dialects(&mut ctx, CMATH).unwrap();
        let patterns = parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
        let module = parse_module(
            &mut ctx,
            r#"
            %a = "test.arg"() : () -> f32
            %p = "test.arg"() : () -> !cmath.complex<f32>
            %norm_p = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
            %x = "arith.mulf"(%norm_p, %a) : (f32, f32) -> f32
            "#,
        )
        .unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn repeated_variable_requires_equal_values() {
        let mut ctx = Context::new();
        irdl::register_dialects(
            &mut ctx,
            "Dialect toy {
               Operation add { Operands (a: !i32, b: !i32) Results (r: !i32) }
               Operation double { Operands (x: !i32) Results (r: !i32) }
             }",
        )
        .unwrap();
        let patterns = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = toy.add(%x, %x) } Rewrite { %d = toy.double(%x) : typeof(%x) Replace %r with %d } }",
        )
        .unwrap();
        let module = parse_module(
            &mut ctx,
            r#"
            %a = "test.arg"() : () -> i32
            %b = "test.arg"() : () -> i32
            %same = "toy.add"(%a, %a) : (i32, i32) -> i32
            %diff = "toy.add"(%a, %b) : (i32, i32) -> i32
            "test.keep"(%same, %diff) : (i32, i32) -> ()
            "#,
        )
        .unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 1, "only add(%a, %a) matches");
        let text = op_to_string(&ctx, module);
        assert!(text.contains("toy.double"), "{text}");
        assert!(text.contains("toy.add"), "{text}");
    }

    /// `benefit N` steers which of two competing patterns wins.
    #[test]
    fn benefit_clause_orders_competing_patterns() {
        let mut ctx = Context::new();
        irdl::register_dialects(
            &mut ctx,
            "Dialect toy {
               Operation add { Operands (a: !i32, b: !i32) Results (r: !i32) }
               Operation double { Operands (x: !i32) Results (r: !i32) }
               Operation fast { Operands (x: !i32) Results (r: !i32) }
             }",
        )
        .unwrap();
        let patterns = parse_patterns(
            &mut ctx,
            "Pattern slow { Match { %r = toy.add(%x, %x) } Rewrite { %d = toy.double(%x) : typeof(%x) Replace %r with %d } }
             Pattern quick benefit 10 { Match { %r = toy.add(%x, %x) } Rewrite { %d = toy.fast(%x) : typeof(%x) Replace %r with %d } }",
        )
        .unwrap();
        assert_eq!(patterns.patterns()[0].name(), "quick");
        assert_eq!(patterns.patterns()[0].benefit(), 10);
        assert_eq!(patterns.patterns()[1].benefit(), 1);
        let module = parse_module(
            &mut ctx,
            r#"
            %a = "test.arg"() : () -> i32
            %s = "toy.add"(%a, %a) : (i32, i32) -> i32
            "test.keep"(%s) : (i32) -> ()
            "#,
        )
        .unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 1);
        let text = op_to_string(&ctx, module);
        assert!(text.contains("toy.fast"), "higher benefit wins: {text}");

        let err = parse_patterns(&mut ctx, "Pattern p benefit 0 { Match { %r = a.b(%x) } Rewrite { Replace %r with %x } }")
            .unwrap_err();
        assert!(err.to_string().contains("positive benefit"), "{err}");
    }

    #[test]
    fn malformed_pattern_is_an_error() {
        let mut ctx = Context::new();
        // Missing Replace.
        let err = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = a.b(%x) } Rewrite { } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("Replace"), "{err}");
        // Replace target is not the root result.
        let err = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = a.b(%x) } Rewrite { Replace %x with %r } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("root"), "{err}");
    }

    #[test]
    fn unbound_rewrite_variable_is_a_parse_error() {
        let mut ctx = Context::new();
        let err = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = a.b(%x) } Rewrite { %d = a.c(%ghost) : typeof(%x) Replace %r with %d } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("%ghost"), "{err}");
        let err = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = a.b(%x) } Rewrite { %d = a.c(%x) : typeof(%nope) Replace %r with %d } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("%nope"), "{err}");
    }

    /// The `{key = literal}` clause constrains matches and decorates
    /// rewritten ops.
    #[test]
    fn attribute_clause_constrains_match_and_sets_on_rewrite() {
        let mut ctx = Context::new();
        irdl::register_dialects(
            &mut ctx,
            "Dialect toy {
               Operation cst { Results (r: !i32) }
               Operation zero { Results (r: !i32) }
             }",
        )
        .unwrap();
        let patterns = parse_patterns(
            &mut ctx,
            r#"Pattern zero_cst {
                 Match { %r = toy.cst() {value = 0} }
                 Rewrite {
                   %z = toy.zero() {origin = "folded", checked = true} : typeof(%r)
                   Replace %r with %z
                 }
               }"#,
        )
        .unwrap();
        let module = parse_module(
            &mut ctx,
            r#"
            %a = "toy.cst"() {value = 0 : i64} : () -> i32
            %b = "toy.cst"() {value = 7 : i64} : () -> i32
            "test.keep"(%a, %b) : (i32, i32) -> ()
            "#,
        )
        .unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 1, "only the value = 0 constant folds");
        let text = op_to_string(&ctx, module);
        assert!(text.contains("toy.zero"), "{text}");
        assert!(text.contains("origin = \"folded\""), "{text}");
        assert!(text.contains("checked = true"), "{text}");
        assert!(text.contains("value = 7"), "{text}");

        let err = parse_patterns(
            &mut ctx,
            "Pattern p { Match { %r = toy.cst() {value = %x} } Rewrite { Replace %r with %r } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("attribute value"), "{err}");
    }

    /// Every declarative pattern lowers to a predicate program whose
    /// accepted set (over a module exercising partial matches, shared
    /// values, and repeated variables) equals `try_match`'s.
    #[test]
    fn lowered_programs_agree_with_try_match() {
        use crate::matcher::PatternMatcher;
        use irdl_ir::walk::collect_ops;

        let mut ctx = Context::new();
        irdl::register_dialects(&mut ctx, CMATH).unwrap();
        irdl::register_dialects(
            &mut ctx,
            "Dialect toy {
               Operation add { Operands (a: !i32, b: !i32) Results (r: !i32) }
               Operation double { Operands (x: !i32) Results (r: !i32) }
             }",
        )
        .unwrap();
        let mut source = CONORM_PATTERN.to_string();
        source.push_str(
            "Pattern same { Match { %r = toy.add(%x, %x) } Rewrite { %d = toy.double(%x) : typeof(%x) Replace %r with %d } }
             Pattern dd { Match { %a = toy.double(%x) %r = toy.double(%a) } Rewrite { Replace %r with %x } }",
        );
        // Parse through the module-private parser to keep the concrete
        // `DeclarativePattern` values (try_match is not on the trait).
        let tokens = lex(&source).unwrap();
        let mut parser = DslParser { ctx: &mut ctx, tokens, pos: 0 };
        let mut declarative: Vec<DeclarativePattern> = Vec::new();
        while parser.peek() != &Token::Eof {
            declarative.push(parser.parse_pattern().unwrap());
        }
        // All benefit 1: the stable sort keeps declaration order, so set
        // positions line up with `declarative` indices.
        let patterns: PatternSet = declarative
            .iter()
            .map(|p| std::sync::Arc::new(p.clone()) as std::sync::Arc<dyn RewritePattern>)
            .collect();
        for pattern in patterns.patterns() {
            assert!(pattern.match_program().is_some(), "{} should lower", pattern.name());
        }
        let module = parse_module(
            &mut ctx,
            r#"
            %p = "test.arg"() : () -> !cmath.complex<f32>
            %q = "test.arg"() : () -> !cmath.complex<f32>
            %np = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
            %nq = "cmath.norm"(%q) : (!cmath.complex<f32>) -> f32
            %good = "arith.mulf"(%np, %nq) : (f32, f32) -> f32
            %bad = "arith.mulf"(%np, %good) : (f32, f32) -> f32
            %a = "test.arg"() : () -> i32
            %b = "test.arg"() : () -> i32
            %same = "toy.add"(%a, %a) : (i32, i32) -> i32
            %diff = "toy.add"(%a, %b) : (i32, i32) -> i32
            %d1 = "toy.double"(%a) : (i32) -> i32
            %d2 = "toy.double"(%d1) : (i32) -> i32
            "test.keep"(%bad, %same, %diff, %d2) : (f32, i32, i32, i32) -> ()
            "#,
        )
        .unwrap();
        let matcher = PatternMatcher::compile(patterns.patterns());
        let mut automaton_accepts = 0usize;
        for op in collect_ops(&ctx, module) {
            let accepted = matcher.matches(&ctx, op);
            for (position, pattern) in declarative.iter().enumerate() {
                let direct = pattern.try_match(&ctx, op).is_some();
                let via_program = accepted.contains(&(position as u32));
                // Lowering is complete, not just conservative: the program
                // accepts exactly where try_match succeeds.
                assert_eq!(
                    direct,
                    via_program,
                    "pattern `{}` at {}",
                    pattern.name,
                    op.name(&ctx).display(&ctx),
                );
                automaton_accepts += usize::from(via_program);
            }
        }
        // Sanity: the module was built so some patterns do accept.
        assert!(automaton_accepts >= 3, "{automaton_accepts}");
    }

    #[test]
    fn interior_op_with_other_uses_is_kept() {
        let mut ctx = Context::new();
        irdl::register_dialects(&mut ctx, CMATH).unwrap();
        let patterns = parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
        let module = parse_module(
            &mut ctx,
            r#"
            %p = "test.arg"() : () -> !cmath.complex<f32>
            %q = "test.arg"() : () -> !cmath.complex<f32>
            %norm_p = "cmath.norm"(%p) : (!cmath.complex<f32>) -> f32
            %norm_q = "cmath.norm"(%q) : (!cmath.complex<f32>) -> f32
            %pq = "arith.mulf"(%norm_p, %norm_q) : (f32, f32) -> f32
            "test.keep"(%norm_p, %pq) : (f32, f32) -> ()
            "#,
        )
        .unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, 1);
        let text = op_to_string(&ctx, module);
        // norm_p still has a use in test.keep, so exactly two norms remain:
        // the kept one and the new norm(mul).
        assert_eq!(text.matches("cmath.norm").count(), 2, "{text}");
        verify_op(&ctx, module).unwrap();
    }
}
