//! The batch pipeline: independent modules fanned out across cores.
//!
//! One [`DialectBundle`] (compiled exactly once) plus one shared
//! [`PatternSet`] drive N workers over a corpus of module sources. Each
//! worker owns a private [`Context`] instantiated from the bundle — so
//! interning, IR arenas, the verdict cache, and evaluation scratch are
//! thread-local with no synchronization on any hot path — while all
//! compiled artifacts (verifier programs, format specs, native hooks,
//! patterns) are `Arc`-shared.
//!
//! Scheduling is a single atomic work index: workers claim the next
//! unprocessed module until the corpus is exhausted, which load-balances
//! uneven module sizes without a queue. Results are collected per worker
//! and merged back into *input order*, so the output of a parallel run is
//! byte-identical to the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use irdl::DialectBundle;
use irdl_ir::print::Printer;
use irdl_ir::verify::ModuleVerifier;
use irdl_ir::Context;

use crate::driver::{rewrite_greedily_matched, CheckLevel, MatcherMode};
use crate::pattern::PatternSet;

/// Configuration for one batch run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Number of worker threads (clamped to at least 1). `1` runs inline
    /// on the calling thread — the sequential baseline.
    pub jobs: usize,
    /// Verify each module after parsing (and again after rewriting, when
    /// patterns are present and `check` is [`CheckLevel::Off`]).
    pub verify: bool,
    /// Interleave verification with rewriting: at
    /// [`CheckLevel::Incremental`] or [`CheckLevel::Full`] every
    /// intermediate state is checked and the first invalid one fails the
    /// module (making the separate post-rewrite verify redundant — it is
    /// skipped). [`CheckLevel::Off`] keeps the fast
    /// rewrite-then-verify-once behaviour.
    pub check: CheckLevel,
    /// Candidate dispatch mode for the rewrite driver. [`MatcherMode::Auto`]
    /// compiles the catalog into the shared matcher automaton (sealed once
    /// before the workers spawn); [`MatcherMode::Scan`] keeps the
    /// per-pattern scan.
    pub matcher: MatcherMode,
    /// Print results in the generic form.
    pub generic: bool,
    /// Threads used *inside* one module (clamped to at least 1): chunked
    /// lexing of text inputs and parallel verification. Orthogonal to
    /// `jobs`, which fans out *across* modules — a giant single module
    /// gains nothing from `jobs` but scales with `intra_jobs`. Both paths
    /// are byte-identical to their sequential counterparts and fall back
    /// to them on small modules, so `intra_jobs > 1` is always safe.
    pub intra_jobs: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            jobs: 1,
            verify: true,
            check: CheckLevel::Off,
            matcher: MatcherMode::Auto,
            generic: false,
            intra_jobs: 1,
        }
    }
}

/// Per-stage wall-clock nanoseconds for one module.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageNanos {
    /// Time parsing the module source.
    pub parse: u64,
    /// Time in verification (post-parse plus post-rewrite).
    pub verify: u64,
    /// Time in the greedy rewrite driver.
    pub rewrite: u64,
    /// Time printing the result.
    pub print: u64,
}

/// The outcome of running one module through the pipeline.
#[derive(Debug, Clone)]
pub struct ModuleResult {
    /// The printed module after rewriting.
    pub output: String,
    /// Number of pattern applications.
    pub rewrites: usize,
    /// Per-stage timing.
    pub timings: StageNanos,
}

/// Observability for one worker thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Modules this worker processed.
    pub modules: usize,
    /// Verdict-cache hits during this run (window starts at zero even
    /// though the cache itself arrives warm from the bundle).
    pub verdict_hits: u64,
    /// Verdict-cache misses during this run.
    pub verdict_misses: u64,
}

/// The outcome of a batch run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// One entry per input, in input order: the processed module or a
    /// rendered diagnostic.
    pub results: Vec<Result<ModuleResult, String>>,
    /// One entry per worker.
    pub workers: Vec<WorkerReport>,
}

impl PipelineReport {
    /// Number of inputs that failed.
    pub fn errors(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// One input to the batch pipeline.
///
/// The two variants are interchangeable: a bytecode input decodes to the
/// same in-memory module its text form parses to, runs through the same
/// rewrite driver, and prints the same output. Mixing them in one batch is
/// fine — merge order is by input index either way.
#[derive(Debug, Clone)]
pub enum PipelineInput {
    /// Textual IR, run through the module parser.
    Text(String),
    /// Module bytecode (magic `IRBC`), run through the bytecode decoder.
    Bytecode(Vec<u8>),
}

/// A borrowed view of one input, so the string-slice entry point does not
/// have to clone the corpus into [`PipelineInput`]s.
#[derive(Clone, Copy)]
enum InputRef<'a> {
    Text(&'a str),
    Bytecode(&'a [u8]),
}

/// One processed module tagged with its input index, so per-worker result
/// lists can be merged back into input order.
type IndexedResult = (usize, Result<ModuleResult, String>);

/// Runs every module in `inputs` through parse → verify → rewrite →
/// print, fanning the work across `opts.jobs` threads.
///
/// The dialects in `bundle` and the patterns in `patterns` are shared by
/// every worker; nothing is recompiled. Failures are per-module: a module
/// that fails to parse or verify produces an `Err` entry in the report and
/// does not affect its siblings.
pub fn run_batch(
    bundle: &DialectBundle,
    patterns: &PatternSet,
    inputs: &[String],
    opts: &PipelineOptions,
) -> PipelineReport {
    let refs: Vec<InputRef<'_>> = inputs.iter().map(|s| InputRef::Text(s)).collect();
    run_refs(bundle, patterns, &refs, opts)
}

/// [`run_batch`] for mixed text/bytecode corpora.
///
/// A [`PipelineInput::Bytecode`] entry is decoded instead of parsed (its
/// decode time is reported as the `parse` stage) and then verified,
/// rewritten, and printed exactly like a text entry.
pub fn run_batch_inputs(
    bundle: &DialectBundle,
    patterns: &PatternSet,
    inputs: &[PipelineInput],
    opts: &PipelineOptions,
) -> PipelineReport {
    let refs: Vec<InputRef<'_>> = inputs
        .iter()
        .map(|input| match input {
            PipelineInput::Text(s) => InputRef::Text(s),
            PipelineInput::Bytecode(b) => InputRef::Bytecode(b),
        })
        .collect();
    run_refs(bundle, patterns, &refs, opts)
}

fn run_refs(
    bundle: &DialectBundle,
    patterns: &PatternSet,
    inputs: &[InputRef<'_>],
    opts: &PipelineOptions,
) -> PipelineReport {
    let jobs = opts.jobs.max(1).min(inputs.len().max(1));
    let next = AtomicUsize::new(0);

    // Seal the catalog before any worker starts: the matcher automaton is
    // compiled exactly once here and Arc-shared, like every other bundle
    // artifact, instead of racing lazily on first use in a worker.
    if opts.matcher == MatcherMode::Auto && !patterns.is_empty() {
        patterns.seal();
    }

    if jobs == 1 {
        let (slots, report) = worker_loop(bundle, patterns, inputs, opts, &next);
        let mut results: Vec<Option<Result<ModuleResult, String>>> =
            (0..inputs.len()).map(|_| None).collect();
        for (index, result) in slots {
            results[index] = Some(result);
        }
        return PipelineReport {
            results: results.into_iter().map(|r| r.expect("all inputs processed")).collect(),
            workers: vec![report],
        };
    }

    let mut per_worker: Vec<(Vec<IndexedResult>, WorkerReport)> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| scope.spawn(|| worker_loop(bundle, patterns, inputs, opts, &next)))
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("pipeline worker panicked"));
        }
    });

    let mut results: Vec<Option<Result<ModuleResult, String>>> =
        (0..inputs.len()).map(|_| None).collect();
    let mut workers = Vec::with_capacity(jobs);
    for (slots, report) in per_worker {
        for (index, result) in slots {
            results[index] = Some(result);
        }
        workers.push(report);
    }
    PipelineReport {
        results: results.into_iter().map(|r| r.expect("all inputs processed")).collect(),
        workers,
    }
}

/// Claims and processes modules until the corpus is exhausted.
fn worker_loop(
    bundle: &DialectBundle,
    patterns: &PatternSet,
    inputs: &[InputRef<'_>],
    opts: &PipelineOptions,
    next: &AtomicUsize,
) -> (Vec<IndexedResult>, WorkerReport) {
    let mut ctx = bundle.instantiate();
    ctx.reset_verdict_stats();
    let mut verifier = ModuleVerifier::new();
    let mut results = Vec::new();
    let mut report = WorkerReport::default();
    loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= inputs.len() {
            break;
        }
        let outcome = process_module(&mut ctx, &mut verifier, patterns, inputs[index], opts);
        results.push((index, outcome));
        report.modules += 1;
    }
    let (hits, misses) = ctx.verdict_cache_stats();
    report.verdict_hits = hits;
    report.verdict_misses = misses;
    (results, report)
}

/// Parse (or decode) → verify → rewrite-to-fixpoint → print for one module.
fn process_module(
    ctx: &mut Context,
    verifier: &mut ModuleVerifier,
    patterns: &PatternSet,
    input: InputRef<'_>,
    opts: &PipelineOptions,
) -> Result<ModuleResult, String> {
    let mut timings = StageNanos::default();
    let intra_jobs = opts.intra_jobs.max(1);

    let start = Instant::now();
    let module = match input {
        InputRef::Text(source) => irdl_ir::parse::parse_module_chunked(ctx, source, intra_jobs)
            .map_err(|d| d.render(source))?,
        InputRef::Bytecode(bytes) => {
            irdl_ir::bytecode::decode_module(ctx, bytes).map_err(|d| d.to_string())?
        }
    };
    timings.parse = start.elapsed().as_nanos() as u64;

    // On any failure below, the half-processed module must not leak into
    // the worker's long-lived context.
    let result = (|| {
        if opts.verify {
            let start = Instant::now();
            let checked = verifier.verify_parallel(ctx, module, intra_jobs);
            timings.verify += start.elapsed().as_nanos() as u64;
            checked.map_err(|errs| {
                errs.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
            })?;
        }

        let mut rewrites = 0;
        if !patterns.is_empty() {
            match opts.check {
                CheckLevel::Off => {
                    let start = Instant::now();
                    let stats = rewrite_greedily_matched(
                        ctx,
                        module,
                        patterns,
                        CheckLevel::Off,
                        opts.matcher,
                    )
                    .expect("unchecked drive cannot fail");
                    timings.rewrite = start.elapsed().as_nanos() as u64;
                    rewrites = stats.rewrites;
                    if opts.verify {
                        let start = Instant::now();
                        let checked = verifier.verify_parallel(ctx, module, intra_jobs);
                        timings.verify += start.elapsed().as_nanos() as u64;
                        checked.map_err(|errs| {
                            format!("IR invalid after rewriting: {}", errs[0])
                        })?;
                    }
                }
                check => {
                    // The checked driver verifies every intermediate
                    // state (and the input), so no separate post-rewrite
                    // verify pass is needed. Interleaved verification time
                    // is indistinguishable from rewrite time here and is
                    // reported as such.
                    let start = Instant::now();
                    let outcome =
                        rewrite_greedily_matched(ctx, module, patterns, check, opts.matcher);
                    timings.rewrite = start.elapsed().as_nanos() as u64;
                    let stats = outcome.map_err(|err| {
                        format!("{err}: {}", err.diagnostics[0])
                    })?;
                    rewrites = stats.rewrites;
                }
            }
        }

        let start = Instant::now();
        let mut output = String::new();
        let mut printer = Printer::new(&mut output);
        printer.set_generic(opts.generic);
        printer.print_op(ctx, module);
        timings.print = start.elapsed().as_nanos() as u64;

        Ok(ModuleResult { output, rewrites, timings })
    })();

    ctx.erase_op(module);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl::NativeRegistry;

    const SPEC: &str = r#"
Dialect toy {
  Operation double { Operands (x: !i32) Results (r: !i32) }
  Operation add { Operands (a: !i32, b: !i32) Results (r: !i32) }
  Operation source { Results (r: !i32) }
}
"#;

    const PATTERN: &str = r#"
Pattern add_to_double {
  Match {
    %r = toy.add(%x, %x)
  }
  Rewrite {
    %d = toy.double(%x) : typeof(%x)
    Replace %r with %d
  }
}
"#;

    /// Input `i` carries `i + 1` extra source ops, so each module's printed
    /// form is structurally distinct — an out-of-order merge is detectable
    /// even though the printer renumbers value ids.
    fn toy_inputs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let mut text = String::new();
                for j in 0..=i {
                    text.push_str(&format!("%e{j} = \"toy.source\"() : () -> i32\n"));
                }
                text.push_str("%x = \"toy.source\"() : () -> i32\n");
                text.push_str("%r = \"toy.add\"(%x, %x) : (i32, i32) -> i32\n");
                text
            })
            .collect()
    }

    fn toy_setup() -> (DialectBundle, PatternSet) {
        let natives = NativeRegistry::with_std();
        let sources = vec![("toy.irdl".to_string(), SPEC.to_string())];
        let bundle = DialectBundle::compile(&sources, &natives).unwrap();
        let mut ctx = bundle.instantiate();
        let patterns = crate::dsl::parse_patterns(&mut ctx, PATTERN).unwrap();
        (bundle, patterns)
    }

    #[test]
    fn parallel_matches_sequential_in_input_order() {
        let (bundle, patterns) = toy_setup();
        let inputs = toy_inputs(13);
        let sequential = run_batch(
            &bundle,
            &patterns,
            &inputs,
            &PipelineOptions { jobs: 1, ..Default::default() },
        );
        let parallel = run_batch(
            &bundle,
            &patterns,
            &inputs,
            &PipelineOptions { jobs: 4, ..Default::default() },
        );
        assert_eq!(sequential.results.len(), inputs.len());
        assert_eq!(parallel.results.len(), inputs.len());
        assert_eq!(parallel.workers.iter().map(|w| w.modules).sum::<usize>(), inputs.len());
        for (i, (s, p)) in sequential.results.iter().zip(&parallel.results).enumerate() {
            let s = s.as_ref().expect("sequential module failed");
            let p = p.as_ref().expect("parallel module failed");
            assert_eq!(s.output, p.output, "output diverged for input {i}");
            assert_eq!(s.rewrites, 1);
            assert_eq!(
                s.output.matches("toy.source").count(),
                i + 2,
                "input order lost at {i}"
            );
        }
    }

    /// Every check level must produce the same outputs; the checked levels
    /// merely verify more often along the way.
    #[test]
    fn check_levels_agree_on_outputs() {
        let (bundle, patterns) = toy_setup();
        let inputs = toy_inputs(5);
        let baseline = run_batch(&bundle, &patterns, &inputs, &PipelineOptions::default());
        for check in [CheckLevel::Incremental, CheckLevel::Full] {
            let opts = PipelineOptions { check, ..Default::default() };
            let checked = run_batch(&bundle, &patterns, &inputs, &opts);
            assert_eq!(checked.errors(), 0, "{check:?}");
            for (b, c) in baseline.results.iter().zip(&checked.results) {
                let b = b.as_ref().unwrap();
                let c = c.as_ref().unwrap();
                assert_eq!(b.output, c.output, "{check:?}");
                assert_eq!(b.rewrites, c.rewrites, "{check:?}");
            }
        }
    }

    /// Automaton and scan dispatch must agree module-for-module, and the
    /// automaton must be compiled exactly once per batch even across
    /// parallel workers.
    #[test]
    fn matcher_modes_agree_and_compile_once() {
        let (bundle, patterns) = toy_setup();
        let inputs = toy_inputs(9);
        let scan = run_batch(
            &bundle,
            &patterns,
            &inputs,
            &PipelineOptions { matcher: MatcherMode::Scan, ..Default::default() },
        );
        let auto = run_batch(
            &bundle,
            &patterns,
            &inputs,
            &PipelineOptions { jobs: 4, matcher: MatcherMode::Auto, ..Default::default() },
        );
        // The batch sealed the set: the automaton in hand now is the one
        // every worker used, and later batches reuse the same artifact
        // (pointer identity — no recompilation).
        let sealed = patterns.matcher();
        let again = run_batch(
            &bundle,
            &patterns,
            &inputs,
            &PipelineOptions { matcher: MatcherMode::Auto, ..Default::default() },
        );
        assert!(std::sync::Arc::ptr_eq(&sealed, &patterns.matcher()));
        for ((s, a), g) in scan.results.iter().zip(&auto.results).zip(&again.results) {
            let s = s.as_ref().unwrap();
            let a = a.as_ref().unwrap();
            let g = g.as_ref().unwrap();
            assert_eq!(s.output, a.output);
            assert_eq!(s.rewrites, a.rewrites);
            assert_eq!(a.output, g.output);
        }
    }

    /// A batch whose even inputs were pre-encoded to bytecode must produce
    /// exactly the outputs of the all-text batch, in the same order.
    #[test]
    fn bytecode_inputs_match_text_inputs() {
        let (bundle, patterns) = toy_setup();
        let texts = toy_inputs(7);
        let baseline = run_batch(&bundle, &patterns, &texts, &PipelineOptions::default());

        let mut ctx = bundle.instantiate();
        let mixed: Vec<PipelineInput> = texts
            .iter()
            .enumerate()
            .map(|(i, text)| {
                if i % 2 == 0 {
                    let module = irdl_ir::parse::parse_module(&mut ctx, text).unwrap();
                    let bytes = irdl_ir::bytecode::encode_module(&ctx, module).unwrap();
                    ctx.erase_op(module);
                    PipelineInput::Bytecode(bytes)
                } else {
                    PipelineInput::Text(text.clone())
                }
            })
            .collect();

        for jobs in [1, 4] {
            let opts = PipelineOptions { jobs, ..Default::default() };
            let report = run_batch_inputs(&bundle, &patterns, &mixed, &opts);
            assert_eq!(report.errors(), 0);
            for (i, (b, m)) in baseline.results.iter().zip(&report.results).enumerate() {
                let b = b.as_ref().unwrap();
                let m = m.as_ref().unwrap();
                assert_eq!(b.output, m.output, "output diverged for input {i} (jobs={jobs})");
                assert_eq!(b.rewrites, m.rewrites);
            }
        }
    }

    /// Corrupt bytecode fails its own slot with a diagnostic, like a text
    /// parse error.
    #[test]
    fn corrupt_bytecode_input_fails_only_its_slot() {
        let (bundle, patterns) = toy_setup();
        let inputs = vec![
            PipelineInput::Text(toy_inputs(1).remove(0)),
            PipelineInput::Bytecode(b"not bytecode".to_vec()),
        ];
        let report = run_batch_inputs(&bundle, &patterns, &inputs, &PipelineOptions::default());
        assert_eq!(report.errors(), 1);
        assert!(report.results[0].is_ok());
        assert!(report.results[1].as_ref().unwrap_err().contains("magic"));
    }

    /// `intra_jobs > 1` (chunked lexing + parallel verification) must
    /// produce outputs byte-identical to the sequential run, including on
    /// a module large enough to actually take both threaded paths.
    #[test]
    fn intra_jobs_is_byte_identical() {
        let (bundle, patterns) = toy_setup();
        let mut big = String::new();
        for j in 0..3000 {
            big.push_str(&format!("%x{j} = \"toy.source\"() : () -> i32\n"));
            big.push_str(&format!("%r{j} = \"toy.add\"(%x{j}, %x{j}) : (i32, i32) -> i32\n"));
        }
        let mut inputs = toy_inputs(3);
        inputs.push(big);
        let baseline = run_batch(&bundle, &patterns, &inputs, &PipelineOptions::default());
        for intra_jobs in [2, 8] {
            let opts = PipelineOptions { intra_jobs, ..Default::default() };
            let threaded = run_batch(&bundle, &patterns, &inputs, &opts);
            assert_eq!(threaded.errors(), 0);
            for (i, (b, t)) in baseline.results.iter().zip(&threaded.results).enumerate() {
                let b = b.as_ref().unwrap();
                let t = t.as_ref().unwrap();
                assert_eq!(b.output, t.output, "input {i} (intra_jobs={intra_jobs})");
                assert_eq!(b.rewrites, t.rewrites);
            }
        }
    }

    #[test]
    fn per_module_failures_do_not_poison_the_batch() {
        let (bundle, patterns) = toy_setup();
        let mut inputs = toy_inputs(3);
        inputs.insert(1, "%broken = \"".to_string());
        let report = run_batch(&bundle, &patterns, &inputs, &PipelineOptions::default());
        assert_eq!(report.errors(), 1);
        assert!(report.results[1].is_err());
        for i in [0, 2, 3] {
            assert!(report.results[i].is_ok(), "module {i} should have survived");
        }
    }
}
