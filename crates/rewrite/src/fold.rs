//! Constant folding built on the interpreter's registered semantics.
//!
//! [`FoldConstants`] is an anchorless [`RewritePattern`] that replaces an
//! operation whose operands are all compile-time constants (per the
//! [`EvalRegistry`]'s constant model) with materialized constant ops
//! carrying its evaluated results — MLIR's `fold` hook, driven by the
//! same evaluator the execution machine uses, so "fold then interpret"
//! and "interpret" are bit-identical by construction.
//!
//! The pattern is deliberately conservative; it folds only when
//!
//! - the op has results and at least one of them is used (folding a sink
//!   would erase an execution observable),
//! - it has no regions or successors and is not itself a constant,
//! - every operand is a result of a constant-model op,
//! - evaluation completes without trapping (a folded `div-by-zero` would
//!   erase the runtime trap) and without consulting the seed-dependent
//!   uninterpreted model, and
//! - every result value has a registered materializer.
//!
//! Each successful fold strictly decreases the number of non-constant ops
//! with used results, so greedy application terminates.

use std::sync::Arc;

use irdl_interp::{EvalOptions, EvalRegistry, EvalValue, Machine};
use irdl_ir::{OpRef, Value};

use crate::pattern::{PatternSet, RewritePattern, Rewriter};

/// The constant-folding pattern. One instance serves every op name: it is
/// anchorless, and the registry decides per op whether semantics exist.
pub struct FoldConstants {
    semantics: Arc<EvalRegistry>,
}

impl FoldConstants {
    /// A folder over `semantics`.
    pub fn new(semantics: Arc<EvalRegistry>) -> FoldConstants {
        FoldConstants { semantics }
    }

    /// The constant operand values of `op`, if every operand is a result
    /// of a constant-model op.
    fn constant_operands(&self, rewriter: &Rewriter<'_>, op: OpRef) -> Option<Vec<EvalValue>> {
        let ctx = rewriter.ctx();
        op.operands(ctx)
            .iter()
            .map(|&operand| {
                let Value::OpResult { op: def, index } = operand else { return None };
                self.semantics.constant_values(ctx, def)?.get(index as usize).copied()
            })
            .collect()
    }
}

impl RewritePattern for FoldConstants {
    fn name(&self) -> &str {
        "fold-constants"
    }

    /// Folds run before same-benefit cleanup patterns (e.g. source DCE),
    /// so a fold's newly orphaned constants are swept in the same drive.
    fn benefit(&self) -> usize {
        2
    }

    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
        let op = rewriter.root();
        let ctx = rewriter.ctx();
        let num_results = op.num_results(ctx);
        if num_results == 0
            || !op.regions(ctx).is_empty()
            || !op.successors(ctx).is_empty()
            || (0..num_results).all(|i| op.result(ctx, i).is_unused(ctx))
            || self.semantics.constant_values(ctx, op).is_some()
        {
            return false;
        }
        let Some(evaluator) = self.semantics.evaluator_for(ctx, op) else { return false };
        let Some(operand_values) = self.constant_operands(rewriter, op) else { return false };

        // Evaluate in a throwaway machine with just the operand registers
        // set. A trap (the fold would erase a runtime trap) or any visit
        // to the uninterpreted model (the result would depend on the input
        // seed) vetoes the fold.
        let values = {
            let ctx = rewriter.ctx();
            let mut machine = Machine::new(ctx, &self.semantics, EvalOptions::default());
            for (&operand, &value) in op.operands(ctx).iter().zip(&operand_values) {
                machine.set(operand, value);
            }
            match evaluator.eval(&mut machine, op) {
                Ok(values) if machine.uninterpreted_hits() == 0 => values,
                _ => return false,
            }
        };
        if values.len() != num_results {
            return false;
        }

        // Materialize every result before touching the IR: all-or-nothing.
        let result_types: Vec<_> = op.result_types(rewriter.ctx()).to_vec();
        let mut states = Vec::with_capacity(values.len());
        for (value, ty) in values.iter().zip(result_types) {
            match self.semantics.materialize(rewriter.ctx_mut(), value, ty) {
                Some(state) => states.push(state),
                None => return false,
            }
        }
        let replacements: Vec<Value> = states
            .into_iter()
            .map(|state| rewriter.insert_before_root(state).result(rewriter.ctx(), 0))
            .collect();
        rewriter.replace_root(&replacements);
        true
    }
}

/// A pattern set holding just the constant folder over `semantics`.
pub fn fold_patterns(semantics: Arc<EvalRegistry>) -> PatternSet {
    let mut set = PatternSet::new();
    set.add(Arc::new(FoldConstants::new(semantics)));
    set
}
