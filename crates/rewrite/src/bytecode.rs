//! Serialization for compiled match programs.
//!
//! A [`MatchProgram`] is pure data — a root key and a linear predicate
//! list over op paths, symbols, and interned attributes — so it
//! round-trips through the `irdl-ir` bytecode primitives (string table +
//! constant pool, same framing and versioning rules as module files).
//! This is the persistable half of a compiled pattern catalog: the
//! *programs* travel; the rewrite actions are closures and must be
//! re-supplied by the host (e.g. re-parsed from the pattern DSL or
//! re-registered native patterns), exactly as native hooks are re-resolved
//! by name when a dialect bundle is loaded.
//!
//! The encoded file (magic `IRMP`) reuses the strings/pool sections and
//! adds one `PROGRAMS` section. Decoding is corruption-safe: malformed
//! input yields a [`Diagnostic`], never a panic.

use irdl_ir::bytecode::{
    ByteReader, ByteWriter, DecodedPool, Pool, SECTION_POOL, SECTION_STRINGS, VERSION,
};
use irdl_ir::diag::{Diagnostic, Result};
use irdl_ir::{Context, OpName};

use crate::matcher::{MatchProgram, OpPath, Pred, ValuePos};

/// Magic bytes of a match-program catalog file.
pub const PROGRAMS_MAGIC: [u8; 4] = *b"IRMP";
/// Section tag of the programs payload.
pub const SECTION_PROGRAMS: u8 = 5;

const P_OPERAND_COUNT: u8 = 0;
const P_RESULT_COUNT: u8 = 1;
const P_OPERAND_DEF: u8 = 2;
const P_VALUE_EQ: u8 = 3;
const P_ATTR_EQ: u8 = 4;

const V_OPERAND: u8 = 0;
const V_RESULT: u8 = 1;

fn write_path(w: &mut ByteWriter, path: &OpPath) {
    w.varint(path.len() as u64);
    w.bytes(path);
}

fn read_path(r: &mut ByteReader<'_>) -> Result<OpPath> {
    let len = r.count(1)?;
    Ok(r.take(len)?.to_vec())
}

fn write_pos(w: &mut ByteWriter, pos: &ValuePos) {
    match pos {
        ValuePos::Operand { path, index } => {
            w.u8(V_OPERAND);
            write_path(w, path);
            w.u8(*index);
        }
        ValuePos::Result { path } => {
            w.u8(V_RESULT);
            write_path(w, path);
        }
    }
}

fn read_pos(r: &mut ByteReader<'_>) -> Result<ValuePos> {
    match r.u8()? {
        V_OPERAND => {
            let path = read_path(r)?;
            let index = r.u8()?;
            Ok(ValuePos::Operand { path, index })
        }
        V_RESULT => Ok(ValuePos::Result { path: read_path(r)? }),
        other => Err(r.error(format!("unknown value position tag {other}"))),
    }
}

/// Encodes a catalog of match programs against `ctx` (the context whose
/// symbols and attributes the programs reference — the pattern bundle's
/// template).
pub fn encode_match_programs(ctx: &Context, programs: &[MatchProgram]) -> Vec<u8> {
    let mut pool = Pool::new();
    let mut body = ByteWriter::new();
    body.varint(programs.len() as u64);
    for program in programs {
        match &program.root {
            Some(name) => {
                body.u8(1);
                let (d, n) = pool.op_name_ids(ctx, *name);
                body.varint(u64::from(d));
                body.varint(u64::from(n));
            }
            None => body.u8(0),
        }
        body.varint(program.preds.len() as u64);
        for pred in &program.preds {
            match pred {
                Pred::OperandCount { path, count } => {
                    body.u8(P_OPERAND_COUNT);
                    write_path(&mut body, path);
                    body.u8(*count);
                }
                Pred::ResultCount { path, count } => {
                    body.u8(P_RESULT_COUNT);
                    write_path(&mut body, path);
                    body.u8(*count);
                }
                Pred::OperandDef { path, index, name } => {
                    body.u8(P_OPERAND_DEF);
                    write_path(&mut body, path);
                    body.u8(*index);
                    let (d, n) = pool.op_name_ids(ctx, *name);
                    body.varint(u64::from(d));
                    body.varint(u64::from(n));
                }
                Pred::ValueEq { a, b } => {
                    body.u8(P_VALUE_EQ);
                    write_pos(&mut body, a);
                    write_pos(&mut body, b);
                }
                Pred::AttrEq { path, key, value } => {
                    body.u8(P_ATTR_EQ);
                    write_path(&mut body, path);
                    let k = pool.symbol_id(ctx, *key);
                    body.varint(u64::from(k));
                    let v = pool.attr_id(ctx, *value);
                    body.varint(u64::from(v));
                }
            }
        }
    }

    let mut out = ByteWriter::new();
    out.bytes(&PROGRAMS_MAGIC);
    out.u8(VERSION);
    pool.emit_sections(&mut out);
    out.section(SECTION_PROGRAMS, &body);
    out.into_vec()
}

/// Decodes a match-program catalog into `ctx`.
///
/// # Errors
///
/// Returns a diagnostic (never panics) on bad magic, an unsupported
/// version, or truncated / malformed sections.
pub fn decode_match_programs(ctx: &mut Context, bytes: &[u8]) -> Result<Vec<MatchProgram>> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4).map_err(|_| Diagnostic::new("bytecode: input shorter than magic"))?;
    if magic != PROGRAMS_MAGIC {
        return Err(Diagnostic::new(format!(
            "bytecode: bad magic {magic:?} (expected {PROGRAMS_MAGIC:?}; not a match-program file)"
        )));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(Diagnostic::new(format!(
            "bytecode: unsupported version {version} (this reader supports {VERSION})"
        )));
    }

    let mut pool = DecodedPool::empty();
    let mut seen_strings = false;
    let mut seen_pool = false;
    let mut programs = None;
    while !r.is_empty() {
        let tag = r.u8()?;
        let mut section = r.sub_reader()?;
        match tag {
            SECTION_STRINGS => {
                pool.read_strings(ctx, &mut section)?;
                seen_strings = true;
            }
            SECTION_POOL => {
                if !seen_strings {
                    return Err(section.error("pool section precedes strings section"));
                }
                pool.read_pool(ctx, &mut section)?;
                seen_pool = true;
            }
            SECTION_PROGRAMS => {
                if !seen_pool {
                    return Err(section.error("programs section precedes pool section"));
                }
                programs = Some(read_programs(ctx, &mut pool, &mut section)?);
            }
            _ => {}
        }
    }
    programs.ok_or_else(|| Diagnostic::new("bytecode: no programs section"))
}

fn read_programs(
    ctx: &mut Context,
    pool: &mut DecodedPool<'_>,
    r: &mut ByteReader<'_>,
) -> Result<Vec<MatchProgram>> {
    let count = r.count(1)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let root = match r.u8()? {
            0 => None,
            1 => {
                let dialect = pool.symbol(ctx, r)?;
                let name = pool.symbol(ctx, r)?;
                Some(OpName { dialect, name })
            }
            _ => return Err(r.error("invalid option tag")),
        };
        let n_preds = r.count(1)?;
        let mut preds = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            preds.push(match r.u8()? {
                P_OPERAND_COUNT => {
                    let path = read_path(r)?;
                    let count = r.u8()?;
                    Pred::OperandCount { path, count }
                }
                P_RESULT_COUNT => {
                    let path = read_path(r)?;
                    let count = r.u8()?;
                    Pred::ResultCount { path, count }
                }
                P_OPERAND_DEF => {
                    let path = read_path(r)?;
                    let index = r.u8()?;
                    let dialect = pool.symbol(ctx, r)?;
                    let name = pool.symbol(ctx, r)?;
                    Pred::OperandDef { path, index, name: OpName { dialect, name } }
                }
                P_VALUE_EQ => {
                    let a = read_pos(r)?;
                    let b = read_pos(r)?;
                    Pred::ValueEq { a, b }
                }
                P_ATTR_EQ => {
                    let path = read_path(r)?;
                    let key = pool.symbol(ctx, r)?;
                    let value = pool.body_attr(r)?;
                    Pred::AttrEq { path, key, value }
                }
                other => return Err(r.error(format!("unknown predicate tag {other}"))),
            });
        }
        out.push(MatchProgram { root, preds });
    }
    if !r.is_empty() {
        return Err(r.error("trailing bytes after programs"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_programs_roundtrip_structurally_equal() {
        let mut ctx = Context::new();
        let add = ctx.op_name("arith", "addi");
        let zero_name = ctx.op_name("arith", "constant");
        let key = ctx.symbol("value");
        let i32 = ctx.i32_type();
        let value = ctx.int_attr(0, i32);
        let programs = vec![
            MatchProgram {
                root: Some(add),
                preds: vec![
                    Pred::OperandCount { path: vec![], count: 2 },
                    Pred::OperandDef { path: vec![], index: 1, name: zero_name },
                    Pred::AttrEq { path: vec![1], key, value },
                    Pred::ValueEq {
                        a: ValuePos::Operand { path: vec![], index: 0 },
                        b: ValuePos::Result { path: vec![1] },
                    },
                ],
            },
            MatchProgram {
                root: None,
                preds: vec![Pred::ResultCount { path: vec![], count: 1 }],
            },
        ];
        let bytes = encode_match_programs(&ctx, &programs);

        // Decode into a clone (same interning prefix, as instances of one
        // bundle are) and into the same context: both must be equal.
        let mut clone = ctx.clone();
        assert_eq!(decode_match_programs(&mut clone, &bytes).unwrap(), programs);
        assert_eq!(decode_match_programs(&mut ctx, &bytes).unwrap(), programs);
    }

    #[test]
    fn corrupt_program_bytes_are_diagnostics() {
        let mut ctx = Context::new();
        let programs =
            vec![MatchProgram { root: None, preds: vec![Pred::ResultCount { path: vec![], count: 1 }] }];
        let bytes = encode_match_programs(&ctx, &programs);
        assert!(decode_match_programs(&mut ctx, b"nope").is_err());
        for len in 0..bytes.len() {
            assert!(decode_match_programs(&mut ctx, &bytes[..len]).is_err());
        }
        for index in 5..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0xff;
            let _ = decode_match_programs(&mut ctx, &corrupt);
        }
    }
}
