//! Regression gate: a warmed journaled rewrite step — insert a
//! replacement, forward uses, erase the original — performs **zero** heap
//! allocations. This is the steady state of greedy driver loops; the
//! compact op storage layer (inline payloads, spill pool, recycled
//! journal and erase scratch; see DESIGN.md "Op storage layout") exists
//! to make it allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use irdl_ir::{ChangeJournal, Context, OpRef, OperationState};
use irdl_rewrite::Rewriter;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warmed_rewrite_step_is_allocation_free() {
    let mut ctx = Context::new();
    let f32t = ctx.f32_type();
    let name = ctx.op_name("t", "node");

    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.create_op(OperationState::new(name).add_result_types([f32t]));
    ctx.append_op(block, src);
    let feed = src.result(&ctx, 0);
    let mut current =
        ctx.create_op(OperationState::new(name).add_operands([feed]).add_result_types([f32t]));
    ctx.append_op(block, current);
    let sink =
        ctx.create_op(OperationState::new(name).add_operands([current.result(&ctx, 0)]));
    ctx.append_op(block, sink);

    let mut journal = ChangeJournal::new();
    let step = |ctx: &mut Context, journal: &mut ChangeJournal, current: OpRef| {
        journal.clear();
        let mut rw = Rewriter::new(ctx, current, journal);
        let fresh = rw.insert_before(
            current,
            OperationState::new(name).add_operands([feed]).add_result_types([f32t]),
        );
        let old = current.result(rw.ctx(), 0);
        let new = fresh.result(rw.ctx(), 0);
        rw.replace_all_uses(old, new);
        rw.erase(current);
        fresh
    };

    // Warm past every buffer growth, including an order-key respace of the
    // block (orders are respaced every ~2^12 prepends at ORDER_STRIDE).
    for _ in 0..8192 {
        current = step(&mut ctx, &mut journal, current);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        current = step(&mut ctx, &mut journal, current);
    }
    let used = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(used, 0, "steady-state rewrite steps must not allocate");
    assert_eq!(current.num_operands(&ctx), 1);
}
