//! Unit tests for the constant-folding pattern: what folds, what must
//! not, and that fold-then-interpret matches interpret on the same seed.

use std::sync::Arc;

use irdl_dialects::corpus_semantics;
use irdl_interp::{run_module, EvalOptions};
use irdl_ir::parse::parse_module;
use irdl_ir::print::op_to_string;
use irdl_ir::Context;
use irdl_rewrite::{fold_patterns, rewrite_greedily};

fn fold_text(text: &str) -> String {
    let mut ctx = Context::new();
    irdl_dialects::register_corpus(&mut ctx).expect("corpus registers");
    let module = parse_module(&mut ctx, text).expect("test module parses");
    let patterns = fold_patterns(Arc::new(corpus_semantics()));
    rewrite_greedily(&mut ctx, module, &patterns);
    op_to_string(&ctx, module)
}

#[test]
fn constant_chain_folds_to_materialized_constant() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 6 : i32} : () -> i32
  %b = "fuzz.const"() {value = 7 : i32} : () -> i32
  %r = "fuzz.muli"(%a, %b) : (i32, i32) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}) : () -> ()"#;
    let folded = fold_text(text);
    assert!(!folded.contains("fuzz.muli"), "multiply must fold:\n{folded}");
    assert!(folded.contains("value = 42 : i32"), "expected folded 42:\n{folded}");
}

#[test]
fn division_by_constant_zero_does_not_fold() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 9 : i32} : () -> i32
  %z = "fuzz.const"() {value = 0 : i32} : () -> i32
  %r = "fuzz.divi"(%a, %z) : (i32, i32) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}) : () -> ()"#;
    let folded = fold_text(text);
    // Folding would erase the runtime div-by-zero trap.
    assert!(folded.contains("fuzz.divi"), "trapping division must survive:\n{folded}");
}

#[test]
fn non_constant_operands_do_not_fold() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.src"() {entropy = 1 : i64} : () -> i32
  %b = "fuzz.const"() {value = 7 : i32} : () -> i32
  %r = "fuzz.addi"(%a, %b) : (i32, i32) -> i32
  "fuzz.sink"(%r) : (i32) -> ()
}) : () -> ()"#;
    let folded = fold_text(text);
    assert!(folded.contains("fuzz.addi"), "input-dependent add must survive:\n{folded}");
}

#[test]
fn fold_preserves_execution_digest() {
    let text = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 6 : i32} : () -> i32
  %b = "fuzz.const"() {value = -11 : i32} : () -> i32
  %s = "fuzz.addi"(%a, %b) : (i32, i32) -> i32
  %m = "fuzz.muli"(%s, %s) : (i32, i32) -> i32
  %x = "fuzz.src"() {entropy = 5 : i64} : () -> i32
  %y = "fuzz.addi"(%m, %x) : (i32, i32) -> i32
  "fuzz.sink"(%y, %m) : (i32, i32) -> ()
}) : () -> ()"#;
    let registry = corpus_semantics();
    for seed in [0u64, 1, 0xDEAD_BEEF] {
        let opts = EvalOptions { input_seed: seed, ..EvalOptions::default() };

        let mut ctx = Context::new();
        irdl_dialects::register_corpus(&mut ctx).expect("corpus registers");
        let module = parse_module(&mut ctx, text).expect("parses");
        let before = run_module(&ctx, &registry, module, opts);

        let patterns = fold_patterns(Arc::new(corpus_semantics()));
        rewrite_greedily(&mut ctx, module, &patterns);
        let after = run_module(&ctx, &registry, module, opts);

        assert_eq!(before.digest(), after.digest(), "seed {seed:#x}");
    }
}
