//! Evaluation tooling: recomputes every statistic of the paper's §6 from a
//! compiled IRDL corpus and renders the paper's tables and figures.
//!
//! The paper argues that a structured, self-contained IR definition format
//! enables meta-tooling over IR designs; this crate is that tooling for the
//! Rust reproduction. [`stats::CorpusStats`] gathers registry-level
//! statistics and [`figures`] renders Table 1 and Figures 3-12.
//!
//! # Example
//!
//! ```
//! let mut ctx = irdl_ir::Context::new();
//! let names = irdl_dialects::register_corpus(&mut ctx)?;
//! let stats = irdl_analysis::CorpusStats::collect(&ctx, &names);
//! let fig4 = irdl_analysis::figures::fig4(&stats);
//! assert!(fig4.contains("spv"));
//! # Ok::<(), irdl_ir::Diagnostic>(())
//! ```

pub mod figures;
pub mod render;
pub mod stats;

pub use stats::CorpusStats;
