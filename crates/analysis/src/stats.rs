//! Statistics over a compiled corpus.
//!
//! Every number here is recomputed from the *registry* of a
//! [`irdl_ir::Context`] — the compiled form of the IRDL corpus —
//! not from the metadata table, so the full pipeline (lexing, parsing,
//! resolution, constraint compilation) stands between the corpus sources
//! and the reported figures.

use irdl::introspect::{DialectReport, OpReport, TypeAttrReport};
use irdl_ir::Context;

/// Per-dialect slices of the corpus, in a fixed (alphabetical) order.
#[derive(Debug, Clone)]
pub struct CorpusStats {
    /// One report per corpus dialect.
    pub dialects: Vec<DialectReport>,
}

impl CorpusStats {
    /// Collects statistics for the dialects named in `names` from the
    /// compiled registry of `ctx`.
    pub fn collect(ctx: &Context, names: &[String]) -> CorpusStats {
        let dialects = irdl::introspect::report(ctx)
            .into_iter()
            .filter(|d| names.contains(&d.name))
            .collect();
        CorpusStats { dialects }
    }

    /// All operations of the corpus.
    pub fn all_ops(&self) -> impl Iterator<Item = &OpReport> {
        self.dialects.iter().flat_map(|d| d.ops.iter())
    }

    /// All type definitions of the corpus.
    pub fn all_types(&self) -> impl Iterator<Item = &TypeAttrReport> {
        self.dialects.iter().flat_map(|d| d.types.iter())
    }

    /// All attribute definitions of the corpus.
    pub fn all_attrs(&self) -> impl Iterator<Item = &TypeAttrReport> {
        self.dialects.iter().flat_map(|d| d.attrs.iter())
    }

    /// Total operation count.
    pub fn num_ops(&self) -> usize {
        self.all_ops().count()
    }

    /// Histogram of operand definitions per op: `[0, 1, 2, 3+]`.
    pub fn operand_hist(ops: &[&OpReport]) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for op in ops {
            hist[(op.decl.operand_defs as usize).min(3)] += 1;
        }
        hist
    }

    /// Histogram of result definitions per op: `[0, 1, 2+]`.
    pub fn result_hist(ops: &[&OpReport]) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for op in ops {
            hist[(op.decl.result_defs as usize).min(2)] += 1;
        }
        hist
    }

    /// Histogram of attribute definitions per op: `[0, 1, 2+]`.
    pub fn attr_hist(ops: &[&OpReport]) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for op in ops {
            hist[(op.decl.attr_defs as usize).min(2)] += 1;
        }
        hist
    }

    /// Histogram of region definitions per op: `[0, 1, 2+]`.
    pub fn region_hist(ops: &[&OpReport]) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for op in ops {
            hist[(op.decl.region_defs as usize).min(2)] += 1;
        }
        hist
    }

    /// Ops with at least one variadic operand / result: `(operands, results)`.
    pub fn variadic_counts(ops: &[&OpReport]) -> (usize, usize) {
        let operands = ops.iter().filter(|o| o.decl.variadic_operands > 0).count();
        let results = ops.iter().filter(|o| o.decl.variadic_results > 0).count();
        (operands, results)
    }

    /// Ops whose local constraints are all expressible in IRDL vs those
    /// needing a native (IRDL-C++) constraint: `(pure, native)`.
    pub fn local_constraint_counts(ops: &[&OpReport]) -> (usize, usize) {
        let native =
            ops.iter().filter(|o| !o.decl.native_local_constraints.is_empty()).count();
        (ops.len() - native, native)
    }

    /// Ops with a native global verifier vs without: `(pure, native)`.
    pub fn verifier_counts(ops: &[&OpReport]) -> (usize, usize) {
        let native = ops.iter().filter(|o| o.decl.has_native_verifier).count();
        (ops.len() - native, native)
    }

    /// Census of native local-constraint names across all ops.
    pub fn native_constraint_census(&self) -> Vec<(String, usize)> {
        let mut census: Vec<(String, usize)> = Vec::new();
        for op in self.all_ops() {
            for name in &op.decl.native_local_constraints {
                match census.iter_mut().find(|(n, _)| n == name) {
                    Some((_, count)) => *count += 1,
                    None => census.push((name.clone(), 1)),
                }
            }
        }
        census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        census
    }

    /// Census of parameter kinds across type (or attribute) definitions:
    /// `(kind label, count, is_native)`.
    pub fn param_kind_census(defs: &[&TypeAttrReport]) -> Vec<(String, usize, bool)> {
        let mut census: Vec<(String, usize, bool)> = Vec::new();
        for def in defs {
            for kind in &def.param_kinds {
                let (label, native) = match kind {
                    irdl_ir::ParamKind::Type => ("attr/type".to_string(), false),
                    irdl_ir::ParamKind::Attr => ("attr/type".to_string(), false),
                    irdl_ir::ParamKind::Integer => ("integer".to_string(), false),
                    irdl_ir::ParamKind::Float => ("float".to_string(), false),
                    irdl_ir::ParamKind::String => ("string".to_string(), false),
                    irdl_ir::ParamKind::Enum => ("enum".to_string(), false),
                    irdl_ir::ParamKind::Location => ("location".to_string(), false),
                    irdl_ir::ParamKind::TypeId => ("type id".to_string(), false),
                    irdl_ir::ParamKind::Array => ("array".to_string(), false),
                    irdl_ir::ParamKind::Native(name) => (name.clone(), true),
                };
                match census.iter_mut().find(|(l, _, _)| *l == label) {
                    Some((_, count, _)) => *count += 1,
                    None => census.push((label, 1, native)),
                }
            }
        }
        census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Context, Vec<String>) {
        let mut ctx = Context::new();
        let names = irdl_dialects::register_corpus(&mut ctx).unwrap();
        (ctx, names)
    }

    #[test]
    fn corpus_stats_cover_all_dialects() {
        let (ctx, names) = corpus();
        let stats = CorpusStats::collect(&ctx, &names);
        assert_eq!(stats.dialects.len(), 28);
        assert_eq!(stats.num_ops(), 942);
        assert_eq!(stats.all_types().count(), 62);
        assert_eq!(stats.all_attrs().count(), 30);
    }

    #[test]
    fn overall_histograms_match_paper_text() {
        let (ctx, names) = corpus();
        let stats = CorpusStats::collect(&ctx, &names);
        let ops: Vec<_> = stats.all_ops().collect();
        let n = ops.len() as f64;
        let hist = CorpusStats::operand_hist(&ops);
        // Paper: 12% zero / 41% one / 32% two / 16% three+.
        assert!((hist[0] as f64 / n * 100.0 - 12.0).abs() < 3.0, "{hist:?}");
        assert!((hist[1] as f64 / n * 100.0 - 41.0).abs() < 3.0, "{hist:?}");
        let results = CorpusStats::result_hist(&ops);
        assert!((results[1] as f64 / n * 100.0 - 84.0).abs() < 4.0, "{results:?}");
        let attrs = CorpusStats::attr_hist(&ops);
        assert!((attrs[0] as f64 / n * 100.0 - 73.0).abs() < 3.0, "{attrs:?}");
        let regions = CorpusStats::region_hist(&ops);
        assert!((regions[0] as f64 / n * 100.0 - 96.0).abs() < 2.0, "{regions:?}");
        let (_, native) = CorpusStats::verifier_counts(&ops);
        assert!((native as f64 / n * 100.0 - 30.0).abs() < 3.0, "{native}");
        let (pure, native_local) = CorpusStats::local_constraint_counts(&ops);
        assert!((pure as f64 / n * 100.0 - 97.0).abs() < 2.0, "{native_local}");
    }

    #[test]
    fn census_finds_three_categories() {
        let (ctx, names) = corpus();
        let stats = CorpusStats::collect(&ctx, &names);
        let census = stats.native_constraint_census();
        assert_eq!(census.len(), 3, "{census:?}");
        assert_eq!(census[0].0, "integer_inequality");
    }
}
