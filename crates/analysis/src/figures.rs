//! Regeneration of every table and figure of the paper's evaluation (§6).
//!
//! Each function renders one artifact as text and is backed by the
//! structured accessors in [`crate::stats`]; the benchmark harness and the
//! `irdl-stats` CLI call these functions directly.

use irdl::introspect::OpReport;

use crate::render::{bar, pct, stacked_bar, two_column_table};
use crate::stats::CorpusStats;

const STACK_GLYPHS: [char; 4] = ['░', '▒', '▓', '█'];
const BAR_WIDTH: usize = 28;

/// Table 1: the 28 dialects and their descriptions.
pub fn table1() -> String {
    let rows: Vec<(String, String)> = irdl_dialects::dialects()
        .iter()
        .map(|d| (d.name.to_string(), d.description.to_string()))
        .collect();
    format!(
        "Table 1: MLIR's 28 dialects\n{}",
        two_column_table(&rows)
    )
}

/// Figure 3: operations defined in MLIR over time (05/2020 - 01/2022).
pub fn fig3() -> String {
    let series = irdl_dialects::snapshots();
    let max = f64::from(series.iter().map(|s| s.ops).max().unwrap_or(1));
    let mut out = String::from("Figure 3: operations defined in MLIR over time\n");
    for s in &series {
        out.push_str(&format!(
            "{:04}-{:02}  {:>4} ops  {:>2} dialects  {}\n",
            s.year,
            s.month,
            s.ops,
            s.dialects,
            bar(f64::from(s.ops), max, 40)
        ));
    }
    let factor = irdl_dialects::timeline::growth_factor();
    out.push_str(&format!("growth over 20 months: {factor:.1}x\n"));
    out
}

/// Figure 4: operations per dialect (ascending, as in the paper).
pub fn fig4(stats: &CorpusStats) -> String {
    let mut rows: Vec<(&str, usize)> =
        stats.dialects.iter().map(|d| (d.name.as_str(), d.ops.len())).collect();
    rows.sort_by_key(|(_, n)| *n);
    let max = rows.iter().map(|(_, n)| *n).max().unwrap_or(1) as f64;
    let mut out = String::from("Figure 4: operations per dialect\n");
    for (name, n) in rows {
        // Log-scaled bars, as the paper's axis is logarithmic.
        let log = (n as f64).ln().max(0.0);
        out.push_str(&format!("{name:>14}  {n:>3}  {}\n", bar(log, max.ln(), 40)));
    }
    out
}

/// Shared renderer for the per-dialect stacked-percentage figures.
fn stacked_figure(
    title: &str,
    legend: &str,
    stats: &CorpusStats,
    buckets: impl Fn(&[&OpReport]) -> Vec<usize>,
) -> String {
    let mut rows: Vec<(String, Vec<usize>, usize)> = stats
        .dialects
        .iter()
        .map(|d| {
            let ops: Vec<&OpReport> = d.ops.iter().collect();
            let hist = buckets(&ops);
            (d.name.clone(), hist, ops.len())
        })
        .collect();
    // Sort by weight of the higher buckets, descending — the paper's
    // ordering (dialects dominated by large counts at the top).
    rows.sort_by(|a, b| {
        let weight = |hist: &[usize], n: usize| -> f64 {
            if n == 0 {
                return 0.0;
            }
            hist.iter()
                .enumerate()
                .map(|(i, &c)| i as f64 * c as f64)
                .sum::<f64>()
                / n as f64
        };
        weight(&b.1, b.2)
            .partial_cmp(&weight(&a.1, a.2))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = format!("{title}\n{legend}\n");
    for (name, hist, _n) in &rows {
        out.push_str(&format!(
            "{name:>14}  {}\n",
            stacked_bar(hist, &STACK_GLYPHS, BAR_WIDTH)
        ));
    }
    let all: Vec<&OpReport> = stats.all_ops().collect();
    let overall = buckets(&all);
    let total: usize = overall.iter().sum();
    out.push_str(&format!(
        "{:>14}  {}   ({})\n",
        "overall",
        stacked_bar(&overall, &STACK_GLYPHS, BAR_WIDTH),
        overall.iter().map(|c| pct(*c, total)).collect::<Vec<_>>().join(" / ")
    ));
    out
}

/// Figure 5a: operand-count distribution per dialect.
pub fn fig5a(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 5a: operands per operation",
        "legend: ░ 0  ▒ 1  ▓ 2  █ 3+",
        stats,
        |ops| CorpusStats::operand_hist(ops).to_vec(),
    )
}

/// Figure 5b: variadic-operand usage per dialect.
pub fn fig5b(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 5b: operations with variadic operands",
        "legend: ░ none  ▒ has variadic operand",
        stats,
        |ops| {
            let (variadic, _) = CorpusStats::variadic_counts(ops);
            vec![ops.len() - variadic, variadic]
        },
    )
}

/// Figure 6a: result-count distribution per dialect.
pub fn fig6a(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 6a: results per operation",
        "legend: ░ 0  ▒ 1  ▓ 2",
        stats,
        |ops| CorpusStats::result_hist(ops).to_vec(),
    )
}

/// Figure 6b: variadic-result usage per dialect.
pub fn fig6b(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 6b: operations with variadic results",
        "legend: ░ none  ▒ has variadic result",
        stats,
        |ops| {
            let (_, variadic) = CorpusStats::variadic_counts(ops);
            vec![ops.len() - variadic, variadic]
        },
    )
}

/// Figure 7a: attribute-count distribution per dialect.
pub fn fig7a(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 7a: attributes per operation",
        "legend: ░ 0  ▒ 1  ▓ 2+",
        stats,
        |ops| CorpusStats::attr_hist(ops).to_vec(),
    )
}

/// Figure 7b: region-count distribution per dialect.
pub fn fig7b(stats: &CorpusStats) -> String {
    stacked_figure(
        "Figure 7b: regions per operation",
        "legend: ░ 0  ▒ 1  ▓ 2",
        stats,
        |ops| CorpusStats::region_hist(ops).to_vec(),
    )
}

/// Figure 8: parameter kinds of type (8a) and attribute (8b) definitions.
pub fn fig8(stats: &CorpusStats) -> String {
    let mut out = String::from("Figure 8: type and attribute parameter kinds\n");
    for (label, defs) in [
        ("(a) types", stats.all_types().collect::<Vec<_>>()),
        ("(b) attributes", stats.all_attrs().collect::<Vec<_>>()),
    ] {
        out.push_str(&format!("{label}\n"));
        let census = CorpusStats::param_kind_census(&defs);
        let max = census.iter().map(|(_, c, _)| *c).max().unwrap_or(1) as f64;
        for (kind, count, native) in &census {
            let marker = if *native { " (domain-specific)" } else { "" };
            out.push_str(&format!(
                "{kind:>18}  {count:>3}  {}{marker}\n",
                bar(*count as f64, max, 30)
            ));
        }
    }
    out
}

/// Figures 9 and 10: expressiveness of type (9) / attribute (10)
/// definitions and verifiers, per dialect.
fn type_attr_expressiveness(stats: &CorpusStats, attrs: bool) -> String {
    let (number, noun) = if attrs { (10, "attribute") } else { (9, "type") };
    let mut out = format!(
        "Figure {number}: {noun} definitions and verifiers (IRDL vs IRDL-Rust)\n"
    );
    out.push_str("  dialect       defs  native-params  native-verifiers\n");
    let mut total = 0usize;
    let mut native_params = 0usize;
    let mut native_verifiers = 0usize;
    for d in &stats.dialects {
        let defs = if attrs { &d.attrs } else { &d.types };
        if defs.is_empty() {
            continue;
        }
        let np = defs.iter().filter(|t| !t.params_in_irdl()).count();
        let nv = defs.iter().filter(|t| t.has_native_verifier).count();
        total += defs.len();
        native_params += np;
        native_verifiers += nv;
        out.push_str(&format!(
            "{:>14}  {:>3}   {:>3}            {:>3}\n",
            d.name,
            defs.len(),
            np,
            nv
        ));
    }
    out.push_str(&format!(
        "overall: {} of {} ({}) use only IRDL parameters; {} ({}) have a native verifier\n",
        total - native_params,
        total,
        pct(total - native_params, total),
        native_verifiers,
        pct(native_verifiers, total),
    ));
    out
}

/// Figure 9: expressiveness of type definitions.
pub fn fig9(stats: &CorpusStats) -> String {
    type_attr_expressiveness(stats, false)
}

/// Figure 10: expressiveness of attribute definitions.
pub fn fig10(stats: &CorpusStats) -> String {
    type_attr_expressiveness(stats, true)
}

/// Figure 11: operation local constraints (a) and verifiers (b), IRDL vs
/// IRDL-Rust, per dialect.
pub fn fig11(stats: &CorpusStats) -> String {
    let mut out = String::from(
        "Figure 11: operation constraints in IRDL vs IRDL-Rust\n\
         (a) local constraints     (b) global verifiers\n",
    );
    let mut rows: Vec<(String, usize, usize, usize)> = stats
        .dialects
        .iter()
        .map(|d| {
            let ops: Vec<&OpReport> = d.ops.iter().collect();
            let (_, native_local) = CorpusStats::local_constraint_counts(&ops);
            let (_, native_verifier) = CorpusStats::verifier_counts(&ops);
            (d.name.clone(), ops.len(), native_local, native_verifier)
        })
        .collect();
    rows.sort_by(|a, b| {
        let fa = a.2 as f64 / a.1.max(1) as f64;
        let fb = b.2 as f64 / b.1.max(1) as f64;
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, n, local, verifier) in &rows {
        out.push_str(&format!(
            "{name:>14}  local: {}  verifier: {}\n",
            stacked_bar(&[n - local, *local], &STACK_GLYPHS, 20),
            stacked_bar(&[n - verifier, *verifier], &STACK_GLYPHS, 20),
        ));
    }
    let all: Vec<&OpReport> = stats.all_ops().collect();
    let (pure_local, _) = CorpusStats::local_constraint_counts(&all);
    let (_, native_verifier) = CorpusStats::verifier_counts(&all);
    out.push_str(&format!(
        "overall: {} of {} ops ({}) express local constraints in IRDL; \
         {} ({}) need a native verifier\n",
        pure_local,
        all.len(),
        pct(pure_local, all.len()),
        native_verifier,
        pct(native_verifier, all.len()),
    ));
    out
}

/// Figure 12: the kinds of local constraints that require IRDL-Rust.
pub fn fig12(stats: &CorpusStats) -> String {
    let census = stats.native_constraint_census();
    let max = census.iter().map(|(_, c)| *c).max().unwrap_or(1) as f64;
    let mut out = String::from("Figure 12: native-only local constraint kinds\n");
    for (name, count) in &census {
        let label = match name.as_str() {
            "integer_inequality" => "integer inequality",
            "stride_check" => "stride check",
            "struct_opacity" => "struct opacity",
            other => other,
        };
        out.push_str(&format!("{label:>20}  {count:>3}  {}\n", bar(*count as f64, max, 30)));
    }
    out
}

/// Renders every table and figure in order.
pub fn render_all(stats: &CorpusStats) -> String {
    let mut out = String::new();
    for section in [
        table1(),
        fig3(),
        fig4(stats),
        fig5a(stats),
        fig5b(stats),
        fig6a(stats),
        fig6b(stats),
        fig7a(stats),
        fig7b(stats),
        fig8(stats),
        fig9(stats),
        fig10(stats),
        fig11(stats),
        fig12(stats),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::Context;

    fn stats() -> CorpusStats {
        let mut ctx = Context::new();
        let names = irdl_dialects::register_corpus(&mut ctx).unwrap();
        CorpusStats::collect(&ctx, &names)
    }

    #[test]
    fn table1_lists_28_dialects() {
        let text = table1();
        assert_eq!(text.lines().count(), 29, "{text}");
        assert!(text.contains("spv"));
        assert!(text.contains("Graphics shaders and compute kernels"));
    }

    #[test]
    fn fig3_shows_growth() {
        let text = fig3();
        assert!(text.contains("444 ops"), "{text}");
        assert!(text.contains("942 ops"), "{text}");
        assert!(text.contains("2.1x"), "{text}");
    }

    #[test]
    fn fig4_orders_by_size() {
        let s = stats();
        let text = fig4(&s);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("arm_neon") || lines[1].contains("builtin"), "{text}");
        assert!(lines.last().unwrap().contains("spv"), "{text}");
    }

    #[test]
    fn fig5a_overall_matches_paper() {
        let s = stats();
        let text = fig5a(&s);
        assert!(text.contains("overall"), "{text}");
        // 12% / 41% / 32% / 16% within rendering rounding.
        let overall = text.lines().last().unwrap();
        assert!(overall.contains('%'), "{overall}");
    }

    #[test]
    fn fig11_reports_30_percent() {
        let s = stats();
        let text = fig11(&s);
        assert!(text.contains("30%") || text.contains("29%") || text.contains("31%"), "{text}");
        assert!(text.contains("97%"), "{text}");
    }

    #[test]
    fn fig12_has_three_bars() {
        let s = stats();
        let text = fig12(&s);
        assert!(text.contains("integer inequality"), "{text}");
        assert!(text.contains("stride check"), "{text}");
        assert!(text.contains("struct opacity"), "{text}");
    }

    #[test]
    fn render_all_is_stable() {
        let s = stats();
        assert_eq!(render_all(&s), render_all(&s));
    }
}
