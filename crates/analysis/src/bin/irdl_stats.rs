//! `irdl-stats`: render the paper's evaluation tables and figures from the
//! compiled 28-dialect corpus.
//!
//! Usage: `irdl-stats [table1|fig3|fig4|fig5a|fig5b|fig6a|fig6b|fig7a|fig7b|fig8|fig9|fig10|fig11|fig12|all]...`

use irdl_analysis::{figures, CorpusStats};

fn main() {
    let mut ctx = irdl_ir::Context::new();
    let names = match irdl_dialects::register_corpus(&mut ctx) {
        Ok(names) => names,
        Err(diag) => {
            eprintln!("error: failed to compile the corpus: {diag}");
            std::process::exit(1);
        }
    };
    let stats = CorpusStats::collect(&ctx, &names);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in wanted {
        let text = match name {
            "table1" => figures::table1(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(&stats),
            "fig5a" => figures::fig5a(&stats),
            "fig5b" => figures::fig5b(&stats),
            "fig6a" => figures::fig6a(&stats),
            "fig6b" => figures::fig6b(&stats),
            "fig7a" => figures::fig7a(&stats),
            "fig7b" => figures::fig7b(&stats),
            "fig8" => figures::fig8(&stats),
            "fig9" => figures::fig9(&stats),
            "fig10" => figures::fig10(&stats),
            "fig11" => figures::fig11(&stats),
            "fig12" => figures::fig12(&stats),
            "all" => figures::render_all(&stats),
            other => {
                eprintln!("unknown figure `{other}`; see --help in the README");
                std::process::exit(2);
            }
        };
        write_stdout(&text);
        write_stdout("\n");
    }
}
/// Writes `text` to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `irdl-doc --corpus | head`).
fn write_stdout(text: &str) {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    if out.write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

