//! ASCII rendering of tables, bars, and stacked percentage charts.

/// Renders a horizontal bar of width proportional to `value / max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    "█".repeat(filled)
}

/// Renders a stacked 100%-bar from bucket counts, using one glyph per
/// bucket (e.g. `░▒▓█`).
pub fn stacked_bar(buckets: &[usize], glyphs: &[char], width: usize) -> String {
    let total: usize = buckets.iter().sum();
    if total == 0 {
        return " ".repeat(width);
    }
    let mut out = String::with_capacity(width);
    let mut used = 0usize;
    for (i, &count) in buckets.iter().enumerate() {
        let glyph = glyphs.get(i).copied().unwrap_or('#');
        let cells = if i + 1 == buckets.len() {
            width - used
        } else {
            ((count as f64 / total as f64) * width as f64).round() as usize
        };
        let cells = cells.min(width - used);
        for _ in 0..cells {
            out.push(glyph);
        }
        used += cells;
    }
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}

/// Formats `part` of `whole` as a percentage with no decimals.
pub fn pct(part: usize, whole: usize) -> String {
    if whole == 0 {
        return "0%".to_string();
    }
    format!("{:.0}%", 100.0 * part as f64 / whole as f64)
}

/// Renders a two-column table with aligned columns.
pub fn two_column_table(rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(a, _)| a.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (left, right) in rows {
        out.push_str(&format!("{left:<width$}  {right}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn stacked_bar_fills_width() {
        let glyphs = ['░', '▒', '▓', '█'];
        let bar = stacked_bar(&[1, 1, 2], &glyphs, 20);
        assert_eq!(bar.chars().count(), 20);
        assert!(bar.contains('░') && bar.contains('▒') && bar.contains('▓'));
        assert_eq!(stacked_bar(&[0, 0], &glyphs, 8), "        ");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 4), "25%");
        assert_eq!(pct(0, 0), "0%");
    }

    #[test]
    fn table_aligns() {
        let rows = vec![
            ("a".to_string(), "one".to_string()),
            ("long".to_string(), "two".to_string()),
        ];
        let text = two_column_table(&rows);
        assert_eq!(text, "a     one\nlong  two\n");
    }
}
