//! Randomized structured module generation.
//!
//! Builds modules that are well-formed *by construction* against any
//! [`OpCatalog`]: operand/result/attribute payloads are sampled from each
//! definition's compiled constraints (via [`irdl::genir::sample`], so the
//! synthesized verifier provably accepts them), while a seeded PRNG picks
//! the shape — which ops, variadic segment sizes, def-use sharing, region
//! nesting, block arguments, and CFG structure.
//!
//! Unlike [`irdl::genir::instantiate_op`] (one deterministic witness per
//! definition, bare terminators), this generator emits *fully valid*
//! modules: required region terminators are themselves instantiated from
//! their compiled definitions, so the hook-running [`verify_module`] —
//! not just the structural walk — accepts every generated module. That is
//! the precondition the differential oracles build on.
//!
//! [`verify_module`]: irdl_ir::verify::verify_module

use irdl::constraint::{BindingEnv, CVal};
use irdl::genir::sample;
use irdl::verifier::CompiledOp;
use irdl_ir::{Attribute, BlockRef, Context, OperationState, OpRef, Type, Value};

use crate::catalog::OpCatalog;
use crate::rng::SplitMix64;

/// Shape knobs for module generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Operations generated in the module's top-level block.
    pub max_top_ops: usize,
    /// Operations generated inside each nested region block.
    pub max_region_ops: usize,
    /// Maximum region nesting depth below the module.
    pub max_depth: usize,
    /// Blocks in a generated multi-block CFG region (`< 2` disables CFG
    /// generation).
    pub max_cfg_blocks: usize,
    /// Probability (numerator over denominator) that an operand reuses an
    /// in-scope value of the required type instead of a fresh source.
    pub reuse_chance: (u32, u32),
    /// Probability that a generated op is an unregistered filler op
    /// (arbitrary shape, no verifier hooks) rather than a catalog op.
    pub misc_chance: (u32, u32),
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_top_ops: 8,
            max_region_ops: 3,
            max_depth: 2,
            max_cfg_blocks: 4,
            reuse_chance: (1, 2),
            misc_chance: (1, 4),
        }
    }
}

/// Generates one module into `ctx`. The result verifies under the full
/// hook-running verifier; a failure to do so is a bug in either the
/// generator or the verifier (the harness checks this invariant).
pub fn generate_module(
    ctx: &mut Context,
    catalog: &OpCatalog,
    config: &GenConfig,
    rng: &mut SplitMix64,
) -> OpRef {
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let count = rng.range(1, config.max_top_ops.max(1) + 1);
    fill_block(ctx, catalog, config, rng, block, 0, count);
    if config.max_cfg_blocks >= 2 && rng.chance(1, 3) {
        generate_cfg_op(ctx, config, rng, block);
    }
    module
}

/// Appends `count` generated ops to `block`.
fn fill_block(
    ctx: &mut Context,
    catalog: &OpCatalog,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
    depth: usize,
    count: usize,
) {
    for _ in 0..count {
        let use_misc = catalog.num_generatable() == 0
            || rng.chance(config.misc_chance.0, config.misc_chance.1);
        if use_misc {
            if rng.chance(1, 2) {
                generate_arith_op(ctx, config, rng, block);
            } else {
                generate_misc_op(ctx, config, rng, block);
            }
            continue;
        }
        let pick = rng.below(catalog.num_generatable());
        let compiled = catalog.generatable_at(pick).clone();
        if instantiate_random(ctx, catalog, &compiled, config, rng, block, depth).is_none() {
            // Unsatisfiable sample (native predicate, negation, ...):
            // keep the op count with a filler instead.
            generate_misc_op(ctx, config, rng, block);
        }
    }
}

/// Builds one randomized instance of `compiled` at the end of `block`.
///
/// Returns `None` when some constraint has no computable witness; the
/// block is left with at most a few extra source ops in that case (they
/// are valid on their own, so well-formedness is preserved).
fn instantiate_random(
    ctx: &mut Context,
    catalog: &OpCatalog,
    compiled: &CompiledOp,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
    depth: usize,
) -> Option<OpRef> {
    use irdl::ast::Variadicity;

    let mut env = BindingEnv::new(compiled.var_decls.len());

    // Segment sizes first: the PRNG draws them up front so the sampled
    // element count matches the emitted segment attributes exactly.
    let draw_count = |rng: &mut SplitMix64, v: &Variadicity| -> usize {
        match v {
            Variadicity::Single => 1,
            Variadicity::Optional => rng.below(2),
            Variadicity::Variadic => rng.below(3),
        }
    };

    let mut operand_types: Vec<Type> = Vec::new();
    let mut operand_sizes: Vec<i64> = Vec::new();
    for def in &compiled.operands {
        let count = draw_count(rng, &def.variadicity);
        operand_sizes.push(count as i64);
        for _ in 0..count {
            match sample(ctx, &def.constraint, &mut env, &compiled.var_decls) {
                Some(CVal::Type(ty)) => operand_types.push(ty),
                _ => return None,
            }
        }
    }

    let mut result_types: Vec<Type> = Vec::new();
    let mut result_sizes: Vec<i64> = Vec::new();
    for def in &compiled.results {
        let count = draw_count(rng, &def.variadicity);
        result_sizes.push(count as i64);
        for _ in 0..count {
            match sample(ctx, &def.constraint, &mut env, &compiled.var_decls) {
                Some(CVal::Type(ty)) => result_types.push(ty),
                _ => return None,
            }
        }
    }

    let mut attributes: Vec<(irdl_ir::Symbol, Attribute)> = Vec::new();
    for (key, constraint) in &compiled.attributes {
        let v = sample(ctx, constraint, &mut env, &compiled.var_decls)?;
        let attr = v.into_attr(ctx);
        attributes.push((*key, attr));
    }
    let multi_variadic = |defs: &[irdl::verifier::CompiledArg]| {
        defs.iter().filter(|d| !matches!(d.variadicity, Variadicity::Single)).count() > 1
    };
    if multi_variadic(&compiled.operands) {
        let key = ctx.symbol(irdl::variadic::OPERAND_SEGMENT_ATTR);
        let items: Vec<Attribute> = operand_sizes.iter().map(|s| ctx.i64_attr(*s)).collect();
        let sizes = ctx.array_attr(items);
        attributes.push((key, sizes));
    }
    if multi_variadic(&compiled.results) {
        let key = ctx.symbol(irdl::variadic::RESULT_SEGMENT_ATTR);
        let items: Vec<Attribute> = result_sizes.iter().map(|s| ctx.i64_attr(*s)).collect();
        let sizes = ctx.array_attr(items);
        attributes.push((key, sizes));
    }

    // Regions: entry args from their compiled constraints, optional nested
    // payload ops, and — when the definition requires a terminator — a
    // *fully instantiated* terminator op, so hook verification passes.
    let mut regions = Vec::new();
    for def in &compiled.regions {
        let mut arg_types = Vec::new();
        if let Some(args) = &def.args {
            for arg in args {
                if !matches!(arg.variadicity, Variadicity::Single) {
                    continue;
                }
                match sample(ctx, &arg.constraint, &mut env, &compiled.var_decls) {
                    Some(CVal::Type(ty)) => arg_types.push(ty),
                    _ => return None,
                }
            }
        }
        let (region, entry) = ctx.create_region_with_entry(arg_types);
        if depth < config.max_depth && rng.chance(1, 2) {
            let count = rng.below(config.max_region_ops + 1);
            fill_block(ctx, catalog, config, rng, entry, depth + 1, count);
        }
        if let Some(term) = def.terminator {
            let term_def = catalog.lookup(term)?.clone();
            if term_def.successors.unwrap_or(0) > 0 {
                return None;
            }
            instantiate_random(ctx, catalog, &term_def, config, rng, entry, config.max_depth)?;
        }
        regions.push(region);
    }

    if compiled.successors.unwrap_or(0) > 0 {
        return None;
    }

    let operands: Vec<Value> =
        operand_types.iter().map(|ty| operand_of_type(ctx, config, rng, block, *ty)).collect();
    let state = OperationState {
        name: compiled.name,
        operands: operands.into(),
        result_types: result_types.into(),
        attributes: attributes.into(),
        successors: irdl_ir::SuccessorList::new(),
        regions: regions.into(),
    };
    let op = ctx.create_op(state);
    ctx.append_op(block, op);
    Some(op)
}

/// A value of exactly `ty`, visible at the end of `block`: either a reused
/// in-scope value (an earlier op's result or a block argument) or a fresh
/// `fuzz.src` source op.
fn operand_of_type(
    ctx: &mut Context,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
    ty: Type,
) -> Value {
    if rng.chance(config.reuse_chance.0, config.reuse_chance.1) {
        let mut candidates: Vec<Value> =
            block.args(ctx).into_iter().filter(|v| v.ty(ctx) == ty).collect();
        for op in block.ops(ctx) {
            for result in op.results(ctx) {
                if result.ty(ctx) == ty {
                    candidates.push(result);
                }
            }
        }
        if !candidates.is_empty() {
            return *rng.choose(&candidates);
        }
    }
    let src = ctx.op_name("fuzz", "src");
    // The entropy attribute distinguishes same-typed sources under the
    // interpreter's uninterpreted-input model: it feeds the op's identity
    // hash, so two `fuzz.src : i32` ops produce *different* input values,
    // and the assignment survives DCE of unrelated ops (unlike any
    // stream-order scheme would).
    let key = ctx.symbol("entropy");
    let attr = ctx.i64_attr(rng.below(1 << 31) as i64);
    let op = ctx
        .create_op(OperationState::new(src).add_result_types([ty]).add_attribute(key, attr));
    ctx.append_op(block, op);
    op.result(ctx, 0)
}

/// Integer types the generated arithmetic ops compute in.
fn random_int_type(ctx: &mut Context, rng: &mut SplitMix64) -> Type {
    match rng.below(3) {
        0 => ctx.i32_type(),
        1 => ctx.i64_type(),
        _ => ctx.index_type(),
    }
}

/// Appends one `fuzz.const` holding a small integer literal.
fn generate_const_op(ctx: &mut Context, rng: &mut SplitMix64, block: BlockRef, ty: Type) -> OpRef {
    let name = ctx.op_name("fuzz", "const");
    let key = ctx.symbol("value");
    // Small signed literals, zero included: `fuzz.divi` by a constant
    // zero exercises trap preservation through constant folding.
    let attr_value = rng.below(21) as i128 - 10;
    let attr = ctx.int_attr(attr_value, ty);
    let op =
        ctx.create_op(OperationState::new(name).add_result_types([ty]).add_attribute(key, attr));
    ctx.append_op(block, op);
    op
}

/// Appends one interpreted arithmetic op (`fuzz.addi`/`subi`/`muli`/`divi`)
/// or a bare `fuzz.const`. Operands lean constant-heavy so the constant
/// folder has real work in generated modules.
fn generate_arith_op(
    ctx: &mut Context,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
) -> OpRef {
    let ty = random_int_type(ctx, rng);
    if rng.chance(1, 3) {
        return generate_const_op(ctx, rng, block, ty);
    }
    const OPS: [&str; 4] = ["addi", "subi", "muli", "divi"];
    let name = ctx.op_name("fuzz", OPS[rng.below(OPS.len())]);
    let operands: Vec<Value> = (0..2)
        .map(|_| {
            if rng.chance(1, 2) {
                generate_const_op(ctx, rng, block, ty).result(ctx, 0)
            } else {
                operand_of_type(ctx, config, rng, block, ty)
            }
        })
        .collect();
    let op = ctx
        .create_op(OperationState::new(name).add_operands(operands).add_result_types([ty]));
    ctx.append_op(block, op);
    op
}

/// Builtin types the unregistered filler ops draw from.
fn random_type(ctx: &mut Context, rng: &mut SplitMix64) -> Type {
    match rng.below(8) {
        0 => ctx.i1_type(),
        1 => ctx.i32_type(),
        2 => ctx.i64_type(),
        3 => ctx.index_type(),
        4 => ctx.f32_type(),
        5 => ctx.f64_type(),
        6 => {
            let f32 = ctx.f32_type();
            ctx.vector_type([rng.range(1, 5) as u64], f32)
        }
        _ => {
            let i32 = ctx.i32_type();
            ctx.tensor_type([rng.range(1, 4) as i64, rng.range(1, 4) as i64], i32)
        }
    }
}

/// An unregistered op with an arbitrary (but valid) shape: random operand
/// reuse, random result types, sometimes an attribute. Exercises the
/// parser/printer and the structural verifier without hook interference.
fn generate_misc_op(
    ctx: &mut Context,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
) -> OpRef {
    const NAMES: [&str; 4] = ["use", "mix", "sink", "pass"];
    let name = ctx.op_name("fuzz", NAMES[rng.below(NAMES.len())]);
    let num_operands = rng.below(3);
    let num_results = rng.below(3);
    let operands: Vec<Value> = (0..num_operands)
        .map(|_| {
            let ty = random_type(ctx, rng);
            operand_of_type(ctx, config, rng, block, ty)
        })
        .collect();
    let result_types: Vec<Type> = (0..num_results).map(|_| random_type(ctx, rng)).collect();
    let mut state =
        OperationState::new(name).add_operands(operands).add_result_types(result_types);
    if rng.chance(1, 3) {
        let key = ctx.symbol("tag");
        let attr = match rng.below(3) {
            0 => ctx.i64_attr(rng.below(100) as i64),
            1 => ctx.string_attr(format!("t{}", rng.below(10))),
            _ => ctx.unit_attr(),
        };
        state = state.add_attribute(key, attr);
    }
    let op = ctx.create_op(state);
    ctx.append_op(block, op);
    op
}

/// Appends one `fuzz.cfg` op holding a multi-block region: every block
/// gets a few local ops and ends with a `fuzz.br` terminator targeting
/// 1–2 random blocks. Block arguments are sprinkled on non-entry blocks.
/// Uses stay block-local, so dominance holds for any branch shape.
fn generate_cfg_op(
    ctx: &mut Context,
    config: &GenConfig,
    rng: &mut SplitMix64,
    block: BlockRef,
) -> OpRef {
    let region = ctx.create_region();
    let num_blocks = rng.range(2, config.max_cfg_blocks.max(2) + 1);
    let mut blocks = Vec::with_capacity(num_blocks);
    for i in 0..num_blocks {
        let num_args = if i == 0 { 0 } else { rng.below(3) };
        let arg_types: Vec<Type> = (0..num_args).map(|_| random_type(ctx, rng)).collect();
        let b = ctx.create_block(arg_types);
        ctx.append_block(region, b);
        blocks.push(b);
    }
    let br = ctx.op_name("fuzz", "br");
    for b in &blocks {
        for _ in 0..rng.below(3) {
            generate_misc_op(ctx, config, rng, *b);
        }
        let num_succs = rng.range(1, 3);
        let succs: Vec<BlockRef> =
            (0..num_succs).map(|_| blocks[rng.below(blocks.len())]).collect();
        let term = ctx.create_op(OperationState::new(br).add_successors(succs));
        ctx.append_op(*b, term);
    }
    let holder = ctx.op_name("fuzz", "cfg");
    let op = ctx.create_op(OperationState::new(holder).add_regions([region]));
    ctx.append_op(block, op);
    op
}
