//! The fuzzing loop: generation, mutation, oracles, reporting.
//!
//! Everything downstream of the seed is deterministic: the corpus bundle
//! is compiled once in declaration order, per-iteration PRNG streams are
//! forked from a single base stream, and the log contains no timestamps
//! or machine-dependent data — so `run_fuzz` with the same options twice
//! produces byte-identical reports, and any failure replays from
//! `(seed, iteration)` alone.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use irdl::DialectBundle;
use irdl_ir::print::op_to_string;
use irdl_ir::verify::ModuleVerifier;
use irdl_ir::Context;

use crate::catalog::OpCatalog;
use crate::genmod::{generate_module, GenConfig};
use crate::genpat::{derive_canon_catalog, pat_dialect_spec, random_catalog};
use crate::genspec::generate_spec;
use crate::mutate::mutate_text;
use crate::oracle::{
    check_bytecode, check_cache, check_drive, check_fixpoint, check_incremental, check_jobs,
    check_matcher, check_parallel_verify, check_translation_validation, OracleFailure,
};
use crate::rng::SplitMix64;

/// Unary-op count of the synthetic `pat` dialect the matcher oracle
/// fuzzes over (see [`crate::genpat`]).
const PAT_UNARY_OPS: usize = 8;

/// Options for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; every PRNG stream derives from it.
    pub seed: u64,
    /// Iteration budget.
    pub iters: u64,
    /// Optional wall-clock budget; the run stops at whichever of
    /// `iters`/`time_budget` is hit first. Runs meant to be compared
    /// byte-for-byte should not set this.
    pub time_budget: Option<Duration>,
    /// Modules per batch-pipeline oracle invocation.
    pub batch: usize,
    /// Generator shape knobs.
    pub config: GenConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iters: 100,
            time_budget: None,
            batch: 8,
            config: GenConfig::default(),
        }
    }
}

/// The outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Iterations actually executed.
    pub iters: u64,
    /// Modules generated (corpus + generated-spec dialects).
    pub modules: u64,
    /// Text mutants fed to the parser.
    pub mutants: u64,
    /// Generated specs compiled.
    pub specs: u64,
    /// Random pattern catalogs fed to the matcher oracle.
    pub catalogs: u64,
    /// Every oracle divergence found (the run stops at the first one).
    pub failures: Vec<OracleFailure>,
    /// Deterministic, timestamp-free run log.
    pub log: String,
}

/// The fuzzing target: a sealed bundle plus the op catalog compiled from
/// the same context lineage (compiled shapes hold context-interned
/// symbols, so catalog and bundle must share ancestry).
pub struct FuzzTarget {
    /// Sealed dialects every oracle instantiates from.
    pub bundle: DialectBundle,
    /// Op shapes for the structured generator.
    pub catalog: OpCatalog,
}

impl FuzzTarget {
    /// Compiles IRDL sources into a fresh context and seals it.
    pub fn from_sources(
        sources: &[(String, String)],
        natives: &irdl::NativeRegistry,
    ) -> Result<FuzzTarget, String> {
        let mut ctx = Context::new();
        let catalog = OpCatalog::compile(&mut ctx, sources, natives)?;
        let names = sources.iter().map(|(name, _)| name.clone()).collect();
        Ok(FuzzTarget { bundle: DialectBundle::capture(ctx, names), catalog })
    }

    /// The 28-dialect evaluation corpus, with the corpus execution
    /// semantics attached as the bundle's
    /// [`Semantics`](irdl_interp::Semantics) artifact so the
    /// translation-validation oracle interprets `builtin`/`scf`/`complex`
    /// ops for real (everything else runs uninterpreted).
    pub fn corpus() -> Result<FuzzTarget, String> {
        let target = FuzzTarget::from_sources(
            &irdl_dialects::corpus_sources(),
            &irdl_dialects::corpus_natives(),
        )?;
        target
            .bundle
            .artifact_or_insert(|| irdl_interp::Semantics(irdl_dialects::corpus_semantics()));
        Ok(target)
    }
}

/// Runs the fuzzing loop. Stops at the first oracle divergence (the
/// divergence is the finding; everything after it would be noise), at the
/// iteration budget, or at the time budget.
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let target = FuzzTarget::corpus()?;
    run_fuzz_on(&target, opts)
}

/// [`run_fuzz`] against an explicit target (used by tests to fuzz small
/// or deliberately-buggy dialect sets).
pub fn run_fuzz_on(target: &FuzzTarget, opts: &FuzzOptions) -> Result<FuzzReport, String> {
    let started = Instant::now();
    let mut base = SplitMix64::new(opts.seed);
    let mut report = FuzzReport {
        iters: 0,
        modules: 0,
        mutants: 0,
        specs: 0,
        catalogs: 0,
        failures: Vec::new(),
        log: String::new(),
    };

    // Matcher-oracle fixtures, built once: the synthetic `pat` dialect
    // random catalogs are written against, and the canonicalization
    // catalog auto-derived from the target's own op corpus.
    let pat_target = FuzzTarget::from_sources(
        &[("pat".to_string(), pat_dialect_spec(PAT_UNARY_OPS))],
        &irdl::NativeRegistry::new(),
    )?;
    let canon_ctx = target.bundle.instantiate();
    let (canon_catalog, canon_patterns) = derive_canon_catalog(&canon_ctx, &target.catalog);
    drop(canon_ctx);
    let _ = writeln!(
        report.log,
        "irdl-fuzz: seed {:#x}, {} iteration budget, batch {}",
        opts.seed, opts.iters, opts.batch
    );

    let mut batch_texts: Vec<String> = Vec::new();
    'iterations: for iter in 0..opts.iters {
        if let Some(budget) = opts.time_budget {
            if started.elapsed() >= budget {
                let _ = writeln!(report.log, "time budget reached after {iter} iterations");
                break;
            }
        }
        report.iters = iter + 1;
        let mut rng = base.fork();

        // Every 8th iteration fuzzes a freshly generated dialect instead
        // of the corpus: the spec generator and the frontend get coverage,
        // and the oracles run against constraints nobody hand-wrote.
        let generated_target;
        let iter_target = if iter % 8 == 7 {
            let spec = generate_spec(&format!("fz{iter}"), &mut rng);
            report.specs += 1;
            match FuzzTarget::from_sources(
                &[(format!("fz{iter}"), spec.clone())],
                &irdl::NativeRegistry::new(),
            ) {
                Ok(t) => {
                    generated_target = t;
                    &generated_target
                }
                Err(e) => {
                    report.failures.push(OracleFailure {
                        oracle: "spec-compile",
                        detail: format!("generated spec does not compile (iter {iter}): {e}"),
                        input: spec,
                        seed: opts.seed,
                    });
                    break 'iterations;
                }
            }
        } else {
            target
        };

        // --- structured generation + single-input oracles ---------------
        let mut ctx = iter_target.bundle.instantiate();
        let module = generate_module(&mut ctx, &iter_target.catalog, &opts.config, &mut rng);
        report.modules += 1;

        // Well-formed-by-construction invariant: the full hook-running
        // verifier must accept every generated module.
        if let Err(errors) = ModuleVerifier::new().verify(&ctx, module) {
            report.failures.push(OracleFailure {
                oracle: "generate",
                detail: format!(
                    "generated module does not verify (iter {iter}): {}",
                    errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
                ),
                input: op_to_string(&ctx, module),
                seed: opts.seed,
            });
            break 'iterations;
        }
        let text = op_to_string(&ctx, module);
        drop(ctx);

        let incremental_seed = rng.next_u64();
        let input_seed = rng.next_u64();
        let checks = [
            check_fixpoint(&iter_target.bundle, &text),
            check_incremental(&iter_target.bundle, &text, incremental_seed, 24),
            check_cache(&iter_target.bundle, &text),
            check_drive(&iter_target.bundle, &text),
            check_bytecode(&iter_target.bundle, &text),
            check_parallel_verify(&iter_target.bundle, &text),
            check_translation_validation(&iter_target.bundle, &text, input_seed),
        ];
        for check in checks {
            if let Err(failure) = check {
                let _ = writeln!(
                    report.log,
                    "iter {iter}: oracle `{}` diverged",
                    failure.oracle
                );
                report.failures.push(failure);
                break 'iterations;
            }
        }

        // --- matcher oracle ---------------------------------------------
        // A fresh module over the `pat` dialect driven with a random DSL
        // catalog: automaton dispatch must agree with the per-pattern
        // scan byte for byte. Corpus iterations additionally drive the
        // corpus module with the auto-derived canonicalization catalog.
        {
            let mut pat_ctx = pat_target.bundle.instantiate();
            let pat_module =
                generate_module(&mut pat_ctx, &pat_target.catalog, &opts.config, &mut rng);
            let pat_text = op_to_string(&pat_ctx, pat_module);
            drop(pat_ctx);
            report.modules += 1;
            let catalog = random_catalog(PAT_UNARY_OPS, 1 + rng.below(8), &mut rng);
            report.catalogs += 1;
            if let Err(failure) = check_matcher(&pat_target.bundle, &catalog, &pat_text) {
                let _ = writeln!(report.log, "iter {iter}: matcher oracle diverged");
                report.failures.push(failure);
                break 'iterations;
            }
        }
        if iter % 8 != 7 && canon_patterns > 0 {
            if let Err(failure) = check_matcher(&target.bundle, &canon_catalog, &text) {
                let _ = writeln!(
                    report.log,
                    "iter {iter}: matcher oracle diverged on the canon catalog"
                );
                report.failures.push(failure);
                break 'iterations;
            }
        }

        // --- text mutants ------------------------------------------------
        for _ in 0..2 {
            let mutant = mutate_text(&text, &mut rng);
            report.mutants += 1;
            // The parser must reject gracefully (no panic); accepted
            // mutants must satisfy the fixpoint and verifier oracles.
            if let Err(failure) = check_fixpoint(&iter_target.bundle, &mutant) {
                let _ = writeln!(
                    report.log,
                    "iter {iter}: oracle `{}` diverged on a text mutant",
                    failure.oracle
                );
                report.failures.push(failure);
                break 'iterations;
            }
            if let Err(failure) = check_cache(&iter_target.bundle, &mutant) {
                let _ = writeln!(report.log, "iter {iter}: cache oracle diverged on a mutant");
                report.failures.push(failure);
                break 'iterations;
            }
            // Accepted mutants must also round-trip through bytecode.
            if let Err(failure) = check_bytecode(&iter_target.bundle, &mutant) {
                let _ =
                    writeln!(report.log, "iter {iter}: bytecode oracle diverged on a mutant");
                report.failures.push(failure);
                break 'iterations;
            }
            // And verify identically under the parallel verifier —
            // mutants are where malformed placements and broken dominance
            // actually reach the planner.
            if let Err(failure) = check_parallel_verify(&iter_target.bundle, &mutant) {
                let _ = writeln!(
                    report.log,
                    "iter {iter}: parallel-verify oracle diverged on a mutant"
                );
                report.failures.push(failure);
                break 'iterations;
            }
            // Accepted mutants must also survive translation validation:
            // mutated attribute payloads and operand rewires are where
            // fold/DCE preconditions actually get stressed.
            if let Err(failure) =
                check_translation_validation(&iter_target.bundle, &mutant, input_seed)
            {
                let _ = writeln!(
                    report.log,
                    "iter {iter}: translation-validation oracle diverged on a mutant"
                );
                report.failures.push(failure);
                break 'iterations;
            }
        }

        // --- batch oracle -----------------------------------------------
        // Only corpus-target modules are batched: the pipeline bundle must
        // match the modules' dialects.
        if iter % 8 != 7 {
            batch_texts.push(text);
            if batch_texts.len() >= opts.batch.max(1) {
                if let Err(failure) = check_jobs(&target.bundle, &batch_texts, 4) {
                    let _ = writeln!(report.log, "iter {iter}: jobs oracle diverged");
                    report.failures.push(failure);
                    break 'iterations;
                }
                batch_texts.clear();
            }
        }

        if (iter + 1) % 50 == 0 {
            let _ = writeln!(
                report.log,
                "iter {}: {} modules, {} mutants, {} specs, {} catalogs, all oracles green",
                iter + 1,
                report.modules,
                report.mutants,
                report.specs,
                report.catalogs
            );
        }
    }

    if report.failures.is_empty() && !batch_texts.is_empty() {
        if let Err(failure) = check_jobs(&target.bundle, &batch_texts, 4) {
            let _ = writeln!(report.log, "final batch: jobs oracle diverged");
            report.failures.push(failure);
        }
    }

    let _ = writeln!(
        report.log,
        "done: {} iterations, {} modules, {} mutants, {} specs, {} catalogs, {} failure(s)",
        report.iters, report.modules, report.mutants, report.specs, report.catalogs,
        report.failures.len()
    );
    Ok(report)
}
