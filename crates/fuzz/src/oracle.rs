//! The nine differential oracles.
//!
//! Each oracle runs one input through two implementations that must agree
//! and reports any divergence with enough context (input text, seed,
//! step) to replay it. The pairs cross-check every fast path the repo has
//! built so far:
//!
//! 1. **fixpoint** — parse → print must reach a fixpoint: printing the
//!    reparse of printed text reproduces it byte for byte (pretty and
//!    generic forms both).
//! 2. **incremental** — after every journaled mutation, the verdict of
//!    [`IncrementalVerifier::verify_changes`] must equal a from-scratch
//!    [`ModuleVerifier`] walk.
//! 3. **cache** — verification with a warm verdict cache, a re-verify
//!    (pure cache hits), and a cleared cache must produce identical
//!    verdicts and identical diagnostics.
//! 4. **jobs** — the batch pipeline at `--jobs 1` and `--jobs 4` must
//!    produce byte-identical per-module results.
//! 5. **drive** — the checked rewrite driver at `CheckLevel::Full` and
//!    `CheckLevel::Incremental` must apply the same rewrites and print
//!    identical output (or fail identically).
//! 6. **matcher** — the greedy driver dispatching through the compiled
//!    matcher automaton (`MatcherMode::Auto`) and through the per-pattern
//!    scan (`MatcherMode::Scan`) must apply the same number of rewrites
//!    and print byte-identical output, for arbitrary random DSL catalogs.
//! 7. **bytecode** — encode → decode into a fresh bundle instance must
//!    reproduce the module: the decoded module prints byte-identically to
//!    the original (text and bytecode are interchangeable surfaces for
//!    the same IR).
//! 8. **parallel-verify** — [`ModuleVerifier::verify_parallel`] (forced
//!    past its small-module fallback) must produce the same verdict and
//!    an identical diagnostic list as the sequential walk, at several
//!    worker counts.
//! 9. **translation-validation** — the module is *executed* (the
//!    `irdl-interp` register machine, seeded random well-typed inputs)
//!    before and after a greedy drive of the semantics-preserving TV
//!    catalog (constant folding + source DCE), in both matcher modes; the
//!    observable outcome — values flowing into sinks plus the trap kind —
//!    must be byte-identical. Unlike oracles 5/6, which check that two
//!    *drivers* agree, this one checks the rewrites themselves preserve
//!    behavior.

use std::sync::Arc;

use irdl::DialectBundle;
use irdl_ir::bytecode::{decode_module, encode_module};
use irdl_ir::parse::parse_module;
use irdl_ir::print::{op_to_string, op_to_string_generic};
use irdl_ir::verify::{IncrementalVerifier, ModuleVerifier};
use irdl_ir::{ChangeJournal, Context, OpRef};
use irdl_interp::{run_module, EvalOptions};
use irdl_rewrite::{
    parse_patterns, rewrite_greedily_matched, rewrite_greedily_with, run_batch, CheckLevel,
    FoldConstants, MatcherMode, PatternSet, PipelineOptions, RewritePattern, Rewriter,
};

use crate::mutate::{mutate_structured, MutationPolicy};
use crate::rng::SplitMix64;

/// One oracle divergence: everything needed to reproduce and report it.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which oracle diverged (`fixpoint`, `incremental`, `cache`,
    /// `jobs`, `drive`, `matcher`, `bytecode`, `parallel-verify`,
    /// `translation-validation`, or `generate`).
    pub oracle: &'static str,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// The input text that triggered it.
    pub input: String,
    /// Mutation-sequence seed, for oracles that draw randomness beyond
    /// the input text (0 when the input alone reproduces the failure).
    pub seed: u64,
}

impl OracleFailure {
    fn new(oracle: &'static str, detail: String, input: &str) -> Self {
        OracleFailure { oracle, detail, input: input.to_string(), seed: 0 }
    }

    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Dead-source elimination: erases unused `fuzz.src` ops. Anchorless, so
/// it scans every op; safe on any input; guaranteed to fire on generated
/// modules (the generator leaves unused sources behind), which keeps the
/// drive/jobs oracles exercising real rewrites, not empty worklists.
struct DceSourcePattern;

impl RewritePattern for DceSourcePattern {
    fn root(&self) -> Option<irdl_ir::OpName> {
        None
    }

    fn name(&self) -> &str {
        "fuzz-dce-src"
    }

    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
        let op = rewriter.root();
        let ctx = rewriter.ctx();
        let name = op.name(ctx);
        let is_src = ctx.symbol_lookup("fuzz").is_some_and(|d| d == name.dialect)
            && ctx.symbol_lookup("src").is_some_and(|n| n == name.name);
        if !is_src || !op.regions(ctx).is_empty() {
            return false;
        }
        rewriter.erase_if_unused(op)
    }
}

/// The shared pattern set the drive/jobs oracles run, built (and its
/// matcher automaton compiled) once per bundle through the bundle's typed
/// artifact store; every oracle invocation after the first reuses the
/// same `Arc`.
pub struct OraclePatterns(pub PatternSet);

/// The pattern set the drive/jobs oracles run.
pub fn oracle_patterns(bundle: &DialectBundle) -> Arc<OraclePatterns> {
    bundle.artifact_or_insert(|| {
        let mut patterns = PatternSet::new();
        patterns.add(Arc::new(DceSourcePattern));
        patterns.seal();
        OraclePatterns(patterns)
    })
}

fn render_errors(errors: &[irdl_ir::Diagnostic]) -> String {
    errors.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
}

fn parse_in(ctx: &mut Context, text: &str) -> Option<OpRef> {
    parse_module(ctx, text).ok()
}

/// Oracle 1: parse → print → parse fixpoint (pretty and generic forms).
///
/// Inputs the parser rejects pass vacuously — rejection is a legitimate
/// outcome for text mutants; what must never happen is accepting text
/// whose print does not reach a fixpoint.
pub fn check_fixpoint(bundle: &DialectBundle, text: &str) -> Result<(), OracleFailure> {
    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
    let printed = op_to_string(&ctx, module);
    let generic = op_to_string_generic(&ctx, module);

    let mut ctx2 = bundle.instantiate();
    let module2 = parse_module(&mut ctx2, &printed).map_err(|e| {
        OracleFailure::new(
            "fixpoint",
            format!("printed module does not re-parse: {}\nprinted:\n{printed}", e),
            text,
        )
    })?;
    let printed2 = op_to_string(&ctx2, module2);
    if printed2 != printed {
        return Err(OracleFailure::new(
            "fixpoint",
            format!("print is not a fixpoint:\nfirst:\n{printed}\nsecond:\n{printed2}"),
            text,
        ));
    }
    let mut ctx3 = bundle.instantiate();
    let module3 = parse_module(&mut ctx3, &generic).map_err(|e| {
        OracleFailure::new(
            "fixpoint",
            format!("generic print does not re-parse: {}\nprinted:\n{generic}", e),
            text,
        )
    })?;
    let generic2 = op_to_string_generic(&ctx3, module3);
    if generic2 != generic {
        return Err(OracleFailure::new(
            "fixpoint",
            format!("generic print is not a fixpoint:\nfirst:\n{generic}\nsecond:\n{generic2}"),
            text,
        ));
    }
    Ok(())
}

/// Oracle 2: incremental ≡ full verification verdict under a random
/// journaled mutation sequence seeded by `seed`.
pub fn check_incremental(
    bundle: &DialectBundle,
    text: &str,
    seed: u64,
    steps: usize,
) -> Result<(), OracleFailure> {
    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };

    let mut incremental = IncrementalVerifier::new();
    let initial = incremental.verify_full(&ctx, module);
    let full = ModuleVerifier::new().verify(&ctx, module);
    if initial.is_ok() != full.is_ok() {
        return Err(OracleFailure::new(
            "incremental",
            format!(
                "initial verdicts disagree: incremental {:?} vs full {:?}",
                initial.as_ref().map_err(|e| render_errors(e)),
                full.as_ref().map_err(|e| render_errors(e)),
            ),
            text,
        )
        .with_seed(seed));
    }
    if initial.is_err() {
        // The incremental contract starts from valid IR.
        return Ok(());
    }

    let mut rng = SplitMix64::new(seed);
    let mut journal = ChangeJournal::new();
    for step in 0..steps {
        journal.clear();
        let Some(mutation) =
            mutate_structured(&mut ctx, module, &mut journal, MutationPolicy::AllowInvalid, &mut rng)
        else {
            continue;
        };
        let incr = incremental.verify_changes(&ctx, &journal);
        let full = ModuleVerifier::new().verify(&ctx, module);
        if incr.is_ok() != full.is_ok() {
            return Err(OracleFailure::new(
                "incremental",
                format!(
                    "verdicts disagree after step {step} ({mutation}, seed {seed:#x}): \
                     incremental {:?} vs full {:?}\nmodule:\n{}",
                    incr.as_ref().map_err(|e| render_errors(e)),
                    full.as_ref().map_err(|e| render_errors(e)),
                    op_to_string(&ctx, module),
                ),
                text,
            )
            .with_seed(seed));
        }
        if incr.is_err() {
            // Both agree the module is now invalid; the incremental
            // verifier's state contract ends here.
            break;
        }
    }
    Ok(())
}

/// Oracle 3: warm-cache, pure-hit, and cleared-cache verification agree
/// on verdict and diagnostics.
pub fn check_cache(bundle: &DialectBundle, text: &str) -> Result<(), OracleFailure> {
    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };

    let as_key = |r: &Result<(), Vec<irdl_ir::Diagnostic>>| match r {
        Ok(()) => "ok".to_string(),
        Err(errors) => format!("err: {}", render_errors(errors)),
    };

    let warm = ModuleVerifier::new().verify(&ctx, module);
    let hits = ModuleVerifier::new().verify(&ctx, module);
    ctx.clear_verdict_cache();
    let cold = ModuleVerifier::new().verify(&ctx, module);

    let (warm, hits, cold) = (as_key(&warm), as_key(&hits), as_key(&cold));
    if warm != hits || warm != cold {
        return Err(OracleFailure::new(
            "cache",
            format!("verdicts diverge: warm [{warm}] / cache-hit [{hits}] / cold [{cold}]"),
            text,
        ));
    }
    Ok(())
}

/// Oracle 8: parallel verification must agree with the sequential
/// [`ModuleVerifier`] — same accept/reject verdict *and* an identical
/// diagnostic list — at several worker counts. Uses
/// [`verify_parallel_force`](ModuleVerifier::verify_parallel_force) so
/// the planner, chunking, and worker pool are exercised even on the
/// small modules the generator emits.
pub fn check_parallel_verify(bundle: &DialectBundle, text: &str) -> Result<(), OracleFailure> {
    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };

    let as_key = |r: &Result<(), Vec<irdl_ir::Diagnostic>>| match r {
        Ok(()) => "ok".to_string(),
        Err(errors) => format!("err: {}", render_errors(errors)),
    };

    let sequential = as_key(&ModuleVerifier::new().verify(&ctx, module));
    for workers in [2, 8] {
        let parallel =
            as_key(&ModuleVerifier::new().verify_parallel_force(&ctx, module, workers));
        if parallel != sequential {
            return Err(OracleFailure::new(
                "parallel-verify",
                format!(
                    "workers={workers}: sequential [{sequential}] vs parallel [{parallel}]"
                ),
                text,
            ));
        }
    }
    Ok(())
}

/// Oracle 4: the batch pipeline at 1 worker and at `jobs` workers
/// produces identical per-module results, in input order.
pub fn check_jobs(
    bundle: &DialectBundle,
    inputs: &[String],
    jobs: usize,
) -> Result<(), OracleFailure> {
    let patterns = oracle_patterns(bundle);
    let run = |jobs: usize| {
        let opts = PipelineOptions {
            jobs,
            verify: true,
            check: CheckLevel::Off,
            generic: false,
            matcher: MatcherMode::Auto,
            intra_jobs: 1,
        };
        run_batch(bundle, &patterns.0, inputs, &opts)
    };
    let sequential = run(1);
    let parallel = run(jobs.max(2));
    for (i, (a, b)) in sequential.results.iter().zip(&parallel.results).enumerate() {
        let same = match (a, b) {
            (Ok(a), Ok(b)) => a.output == b.output && a.rewrites == b.rewrites,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !same {
            return Err(OracleFailure::new(
                "jobs",
                format!(
                    "module #{i} differs between --jobs 1 and --jobs {}: {:?} vs {:?}",
                    jobs.max(2),
                    a.as_ref().map(|m| &m.output),
                    b.as_ref().map(|m| &m.output),
                ),
                &inputs[i],
            ));
        }
    }
    Ok(())
}

/// Oracle 5: the checked driver at `Full` and `Incremental` agrees on
/// rewrite count, success, and printed output.
pub fn check_drive(bundle: &DialectBundle, text: &str) -> Result<(), OracleFailure> {
    let patterns = oracle_patterns(bundle);
    let mut outcomes: Vec<Result<(usize, String), String>> = Vec::new();
    for check in [CheckLevel::Full, CheckLevel::Incremental] {
        let mut ctx = bundle.instantiate();
        let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
        let outcome = match rewrite_greedily_with(&mut ctx, module, &patterns.0, check) {
            Ok(stats) => Ok((stats.rewrites, op_to_string(&ctx, module))),
            Err(e) => Err(format!("pattern `{}`: {}", e.pattern, render_errors(&e.diagnostics))),
        };
        outcomes.push(outcome);
    }
    if outcomes[0] != outcomes[1] {
        return Err(OracleFailure::new(
            "drive",
            format!("Full {:?} vs Incremental {:?}", outcomes[0], outcomes[1]),
            text,
        ));
    }
    Ok(())
}

/// Oracle 6: automaton dispatch ≡ per-pattern scan.
///
/// Parses `catalog` (DSL pattern text) and drives `text` to a fixpoint
/// once per [`MatcherMode`] at `CheckLevel::Off`; the two runs must apply
/// the same number of rewrites and print byte-identical output. The
/// catalog must parse — the harness only feeds generated catalogs, so a
/// parse failure is itself a generator bug worth reporting.
pub fn check_matcher(
    bundle: &DialectBundle,
    catalog: &str,
    text: &str,
) -> Result<(), OracleFailure> {
    let mut outcomes: Vec<(usize, String)> = Vec::new();
    for mode in [MatcherMode::Scan, MatcherMode::Auto] {
        let mut ctx = bundle.instantiate();
        let patterns = match parse_patterns(&mut ctx, catalog) {
            Ok(patterns) => patterns,
            Err(e) => {
                return Err(OracleFailure::new(
                    "matcher",
                    format!("generated catalog does not parse: {e}\ncatalog:\n{catalog}"),
                    text,
                ));
            }
        };
        let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
        let stats = rewrite_greedily_matched(&mut ctx, module, &patterns, CheckLevel::Off, mode)
            .expect("unchecked drive cannot fail");
        outcomes.push((stats.rewrites, op_to_string(&ctx, module)));
    }
    if outcomes[0] != outcomes[1] {
        return Err(OracleFailure::new(
            "matcher",
            format!(
                "scan vs automaton diverge:\nscan ({} rewrites):\n{}\nautomaton ({} rewrites):\n{}\ncatalog:\n{catalog}",
                outcomes[0].0, outcomes[0].1, outcomes[1].0, outcomes[1].1,
            ),
            text,
        ));
    }
    Ok(())
}

/// Oracle 7: bytecode round-trip is print-byte-identical.
///
/// Inputs the parser rejects pass vacuously, like the fixpoint oracle.
/// Accepted inputs must encode, the bytes must decode into a *fresh*
/// bundle instance (the load path a distributed pipeline would take), and
/// the decoded module must print exactly the original's printed form —
/// both pretty and generic.
pub fn check_bytecode(bundle: &DialectBundle, text: &str) -> Result<(), OracleFailure> {
    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
    let printed = op_to_string(&ctx, module);
    let generic = op_to_string_generic(&ctx, module);
    let bytes = encode_module(&ctx, module).map_err(|e| {
        OracleFailure::new("bytecode", format!("module does not encode: {e}"), text)
    })?;

    let mut ctx2 = bundle.instantiate();
    let decoded = decode_module(&mut ctx2, &bytes).map_err(|e| {
        OracleFailure::new(
            "bytecode",
            format!("encoded module does not decode: {e}\nprinted:\n{printed}"),
            text,
        )
    })?;
    let printed2 = op_to_string(&ctx2, decoded);
    if printed2 != printed {
        return Err(OracleFailure::new(
            "bytecode",
            format!(
                "decoded module prints differently:\noriginal:\n{printed}\ndecoded:\n{printed2}"
            ),
            text,
        ));
    }
    let generic2 = op_to_string_generic(&ctx2, decoded);
    if generic2 != generic {
        return Err(OracleFailure::new(
            "bytecode",
            format!(
                "decoded module prints differently (generic):\noriginal:\n{generic}\ndecoded:\n{generic2}"
            ),
            text,
        ));
    }
    Ok(())
}

/// The translation-validation pattern catalog: constant folding over the
/// bundle's semantics artifact plus source DCE. Both patterns are
/// semantics-preserving by design, so the oracle can demand bit-identical
/// observable behavior. (The random `pat`-dialect catalogs and the
/// derived canonicalization catalog are deliberately *not* validated this
/// way — operand-forwarding rewrites change behavior by construction.)
pub struct TvPatterns(pub PatternSet);

/// The TV catalog for `bundle`, built once through the typed artifact
/// store (alongside the bundle's [`Semantics`](irdl_interp::Semantics)).
pub fn tv_patterns(bundle: &DialectBundle) -> Arc<TvPatterns> {
    // Resolve the semantics artifact *before* entering `artifact_or_insert`:
    // the builder closure runs under the bundle's artifact write lock, and
    // `bundle_semantics` takes that same lock.
    let semantics = irdl_interp::bundle_semantics(bundle);
    bundle.artifact_or_insert(|| {
        let mut patterns = PatternSet::new();
        patterns.add(Arc::new(FoldConstants::new(Arc::new(semantics.0.clone()))));
        patterns.add(Arc::new(DceSourcePattern));
        patterns.seal();
        TvPatterns(patterns)
    })
}

/// Oracle 9: rewrites preserve observable behavior.
///
/// Executes `text` on the interpreter with inputs derived from `seed`,
/// then drives the TV catalog to a fixpoint (both matcher modes, checks
/// off — the *execution* is the check here) and executes again with the
/// same inputs. The observation digests — every value flowing into a sink
/// op, in order, plus the trap kind — must match exactly. Inputs the
/// parser rejects pass vacuously.
pub fn check_translation_validation(
    bundle: &DialectBundle,
    text: &str,
    seed: u64,
) -> Result<(), OracleFailure> {
    let semantics = irdl_interp::bundle_semantics(bundle);
    let opts = EvalOptions { input_seed: seed, ..EvalOptions::default() };

    let mut ctx = bundle.instantiate();
    let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
    let baseline = run_module(&ctx, &semantics.0, module, opts);
    drop(ctx);

    let patterns = tv_patterns(bundle);
    for mode in [MatcherMode::Scan, MatcherMode::Auto] {
        let mut ctx = bundle.instantiate();
        let Some(module) = parse_in(&mut ctx, text) else { return Ok(()) };
        let stats = rewrite_greedily_matched(&mut ctx, module, &patterns.0, CheckLevel::Off, mode)
            .expect("unchecked drive cannot fail");
        let after = run_module(&ctx, &semantics.0, module, opts);
        if after.digest() != baseline.digest() {
            return Err(OracleFailure::new(
                "translation-validation",
                format!(
                    "observable behavior diverges after {} rewrites ({mode:?}, input seed \
                     {seed:#x}):\nbefore:\n{}after:\n{}rewritten module:\n{}",
                    stats.rewrites,
                    baseline.digest(),
                    after.digest(),
                    op_to_string(&ctx, module),
                ),
                text,
            )
            .with_seed(seed));
        }
    }
    Ok(())
}

/// Runs every single-input oracle on `text`, collecting all divergences
/// (the jobs oracle needs a batch and is run separately by the harness;
/// the matcher oracle additionally needs a catalog).
pub fn replay_all(bundle: &DialectBundle, text: &str, seed: u64) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    for check in [
        check_fixpoint(bundle, text),
        check_incremental(bundle, text, seed, 24),
        check_cache(bundle, text),
        check_drive(bundle, text),
        check_bytecode(bundle, text),
        check_parallel_verify(bundle, text),
        check_jobs(bundle, std::slice::from_ref(&text.to_string()), 2),
        check_translation_validation(bundle, text, seed),
    ] {
        if let Err(f) = check {
            failures.push(f);
        }
    }
    failures
}
