//! The generator's view of a set of compiled dialects.
//!
//! IRDL's self-contained definitions make dialects introspectable data
//! (paper §3); the fuzzer leans on exactly that: every operation shape is
//! available as an [`irdl::verifier::CompiledOp`], so one generator covers
//! every dialect ever compiled — the 28-dialect corpus and randomly
//! generated specs alike — with no per-dialect code.
//!
//! Ordering matters: the catalog lists operations in *source order* (the
//! order the IRDL text declares them), never in registry-map order, so
//! generation driven by a seeded PRNG is bit-reproducible.

use std::collections::HashMap;
use std::sync::Arc;

use irdl::verifier::CompiledOp;
use irdl::NativeRegistry;
use irdl_ir::{Context, OpName};

/// All operation definitions of one or more compiled dialects, in
/// deterministic (source) order.
pub struct OpCatalog {
    /// Every compiled op, in declaration order across sources.
    pub ops: Vec<Arc<CompiledOp>>,
    /// Indices into `ops` of definitions the block-local generator can
    /// instantiate mid-block. Terminators are excluded: a `successors`
    /// clause — even an empty one, like a yield's — marks the op as a
    /// terminator, which must come last in its block and is instantiated
    /// only on demand (region terminator requirements, CFG generation).
    generatable: Vec<usize>,
    by_name: HashMap<OpName, usize>,
}

impl OpCatalog {
    /// Compiles `sources` (pairs of `(display name, IRDL text)`) into
    /// `ctx`, registering every dialect and collecting every op shape.
    ///
    /// The same context must be the one modules are later generated in —
    /// compiled shapes hold symbols interned in `ctx` (clones of `ctx`,
    /// e.g. [`irdl::DialectBundle`] instances captured from it, stay
    /// compatible because interning is append-only).
    pub fn compile(
        ctx: &mut Context,
        sources: &[(String, String)],
        natives: &NativeRegistry,
    ) -> Result<OpCatalog, String> {
        let mut ops: Vec<Arc<CompiledOp>> = Vec::new();
        for (name, source) in sources {
            let file = irdl::parse_irdl(source)
                .map_err(|e| format!("{name}: {}", e.render(source)))?;
            for dialect in &file.dialects {
                let compiled = irdl::compile_dialect_collecting(ctx, dialect, natives)
                    .map_err(|e| format!("{name}: {}", e.render(source)))?;
                ops.extend(compiled);
            }
        }
        Ok(OpCatalog::from_ops(ops))
    }

    /// Wraps an already-compiled op list (assumed to be in a
    /// deterministic order).
    pub fn from_ops(ops: Vec<Arc<CompiledOp>>) -> OpCatalog {
        let by_name = ops.iter().enumerate().map(|(i, op)| (op.name, i)).collect();
        let generatable = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.successors.is_none())
            .map(|(i, _)| i)
            .collect();
        OpCatalog { ops, generatable, by_name }
    }

    /// The compiled definition of `name`, if this catalog has it.
    pub fn lookup(&self, name: OpName) -> Option<&Arc<CompiledOp>> {
        self.by_name.get(&name).map(|i| &self.ops[*i])
    }

    /// Definitions the block-local generator can instantiate.
    pub fn generatable(&self) -> impl Iterator<Item = &Arc<CompiledOp>> {
        self.generatable.iter().map(|i| &self.ops[*i])
    }

    /// Number of generatable definitions.
    pub fn num_generatable(&self) -> usize {
        self.generatable.len()
    }

    /// The `i % len`-th generatable definition (PRNG indexing).
    pub fn generatable_at(&self, i: usize) -> &Arc<CompiledOp> {
        &self.ops[self.generatable[i % self.generatable.len()]]
    }
}
