//! Randomized IRDL specification generation.
//!
//! Emits random-but-valid dialect definitions as IRDL text and pushes
//! them through the real frontend (`irdl::parse_irdl` + compilation), so
//! the fuzzer exercises the *definition* half of the stack — parser,
//! resolver, constraint compiler — on inputs no hand-written corpus
//! covers, and then fuzzes IR against the freshly compiled dialect like
//! any other. Generation sticks to grammar the frontend documents as
//! valid; a compile failure on generated text is therefore a finding.

use std::fmt::Write as _;

use crate::rng::SplitMix64;

/// Type-parameter kinds drawn for generated `Type` definitions. All-`!AnyType`
/// parameter lists are kept common so generated ops can reference the types
/// parametrically without attribute-literal syntax.
const PARAM_KINDS: [&str; 5] = ["!AnyType", "uint32_t", "string", "int64_t", "array<int64_t>"];

/// Operand/result constraint pool (builtin side).
const VALUE_KINDS: [&str; 8] =
    ["!AnyInteger", "!AnyFloat", "!i32", "!f32", "!AnyType", "!i64", "!index", "!AnyVector"];

/// Attribute constraint pool.
const ATTR_KINDS: [&str; 6] =
    ["#i64_attr", "string_attr", "#f32_attr", "bool_attr", "array_attr", "symbol_attr"];

/// Generates one random dialect definition named `name`.
pub fn generate_spec(name: &str, rng: &mut SplitMix64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Dialect {name} {{");
    let _ = writeln!(out, "  Summary \"generated dialect {name}\"");

    let has_enum = rng.chance(1, 2);
    if has_enum {
        let _ = writeln!(out, "  Enum mode {{ Default, Fast, Strict }}");
    }

    // An alias usable as an operand constraint.
    let has_alias = rng.chance(1, 2);
    if has_alias {
        let _ = writeln!(out, "  Alias !Scalar = !AnyOf<!f32, !f64, !i32>");
    }

    // Types: a mix of all-!AnyType parameter lists (referencable from op
    // constraints) and varied parameter kinds.
    let num_types = rng.below(4);
    let mut referencable: Vec<(String, usize)> = Vec::new();
    for i in 0..num_types {
        let simple = rng.chance(1, 2);
        let num_params = rng.range(1, 3);
        let params: Vec<String> = (0..num_params)
            .map(|p| {
                let kind = if simple { "!AnyType" } else { *rng.choose(&PARAM_KINDS) };
                format!("p{p}: {kind}")
            })
            .collect();
        let _ = writeln!(out, "  Type ty{i} {{");
        let _ = writeln!(out, "    Parameters ({})", params.join(", "));
        let _ = writeln!(out, "    Summary \"generated type #{i}\"");
        let _ = writeln!(out, "  }}");
        if simple {
            referencable.push((format!("ty{i}"), num_params));
        }
    }

    // Operations.
    let num_ops = rng.range(1, 6);
    for i in 0..num_ops {
        let _ = writeln!(out, "  Operation op{i} {{");
        let num_operands = rng.below(4);
        let num_results = rng.below(3);
        let use_var = num_operands >= 1 && num_results >= 1 && rng.chance(1, 3);
        if use_var {
            let decl = if has_alias { "!Scalar" } else { "!AnyType" };
            let _ = writeln!(out, "    ConstraintVar (!T: {decl})");
        }
        let value_constraint = |rng: &mut SplitMix64, allow_var: bool| -> String {
            if allow_var && rng.chance(1, 2) {
                return "!T".to_string();
            }
            match rng.below(4) {
                0 if !referencable.is_empty() => {
                    let (ty, arity) = rng.choose(&referencable).clone();
                    let args: Vec<&str> = (0..arity)
                        .map(|_| *rng.choose(&["!f32", "!i32", "!i64"]))
                        .collect();
                    format!("!{ty}<{}>", args.join(", "))
                }
                1 if has_alias => "!Scalar".to_string(),
                2 => {
                    let a = *rng.choose(&VALUE_KINDS);
                    let b = *rng.choose(&["!f64", "!i1", "!index"]);
                    format!("!AnyOf<{a}, {b}>")
                }
                _ => rng.choose(&VALUE_KINDS).to_string(),
            }
        };
        if num_operands > 0 {
            // At most one non-single definition per list keeps segment
            // layouts unambiguous half the time; the other half gets two,
            // covering the explicit segment-attribute path.
            let variadic_slots = match rng.below(4) {
                0 => 0,
                1 | 2 => 1,
                _ => 2.min(num_operands),
            };
            let defs: Vec<String> = (0..num_operands)
                .map(|j| {
                    let c = value_constraint(rng, use_var);
                    if j < variadic_slots {
                        let wrapper = if rng.chance(1, 2) { "Variadic" } else { "Optional" };
                        format!("v{j}: {wrapper}<{c}>")
                    } else {
                        format!("v{j}: {c}")
                    }
                })
                .collect();
            let _ = writeln!(out, "    Operands ({})", defs.join(", "));
        }
        if num_results > 0 {
            let defs: Vec<String> = (0..num_results)
                .map(|j| format!("r{j}: {}", value_constraint(rng, use_var)))
                .collect();
            let _ = writeln!(out, "    Results ({})", defs.join(", "));
        }
        let num_attrs = rng.below(3);
        if num_attrs > 0 {
            let defs: Vec<String> = (0..num_attrs)
                .map(|j| {
                    let kind = if has_enum && rng.chance(1, 4) {
                        "mode"
                    } else {
                        *rng.choose(&ATTR_KINDS)
                    };
                    format!("a{j}: {kind}")
                })
                .collect();
            let _ = writeln!(out, "    Attributes ({})", defs.join(", "));
        }
        let _ = writeln!(out, "    Summary \"generated op #{i}\"");
        let _ = writeln!(out, "  }}");
    }

    out.push_str("}\n");
    out
}
