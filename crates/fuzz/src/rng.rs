//! Deterministic randomness for the fuzzer.
//!
//! A [splitmix64](https://prng.di.unimi.it/splitmix64.c) generator: 64 bits
//! of state, a full-period sequence, and identical output on every platform
//! — which is what makes every fuzz finding reproducible from its seed
//! alone. The repo's differential tests already use a small LCG for the
//! same reason; splitmix64 adds output mixing so low bits are usable and
//! `fork` produces decorrelated child streams.

/// A splitmix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Seeds a generator. Every sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform value in `lo..hi` (half-open). `hi` must exceed `lo`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// A uniformly chosen element of `items` (which must be non-empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A decorrelated child generator, for sub-tasks that should not
    /// perturb the parent's sequence when their own draw count changes.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs of splitmix64 seeded with 1234567, from the
        // reference implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for n in 1..40 {
            for _ in 0..50 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut parent = SplitMix64::new(9);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "sibling forks must not correlate");
    }
}
