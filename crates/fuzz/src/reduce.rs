//! Delta-debugging reduction of failing inputs.
//!
//! Raw counterexamples from a structured generator are unreadable — MLIR
//! ships `mlir-reduce` for exactly this reason. This module implements
//! ddmin (Zeller & Hildebrandt) over the module's operations (which
//! subsumes blocks and regions: erasing an op erases its whole subtree),
//! followed by a greedy attribute-removal pass. Every candidate is
//! re-rendered from the *original* text, so op indices stay stable and
//! the whole reduction is deterministic.
//!
//! Ops with still-used results are not simply erased: their uses are
//! first forwarded to fresh `fuzz.src` stubs of the same type, the
//! standard reduction trick that keeps the surrounding IR parseable while
//! the suspect op disappears.

use std::collections::HashSet;

use irdl::DialectBundle;
use irdl_ir::parse::parse_module;
use irdl_ir::print::op_to_string;
use irdl_ir::walk::collect_ops;
use irdl_ir::{Context, OperationState, OpRef};

/// All non-module ops in deterministic pre-order.
fn module_ops(ctx: &Context, module: OpRef) -> Vec<OpRef> {
    collect_ops(ctx, module).into_iter().filter(|&op| op != module).collect()
}

/// Renders `text` with every op whose pre-order index is *not* in `keep`
/// removed (uses forwarded to typed stubs). `None` if `text` no longer
/// parses (cannot happen for inputs the reducer accepted earlier).
fn render_kept(bundle: &DialectBundle, text: &str, keep: &HashSet<usize>) -> Option<String> {
    let mut ctx = bundle.instantiate();
    let module = parse_module(&mut ctx, text).ok()?;
    let ops = module_ops(&ctx, module);
    // Erase users before defs (reverse pre-order): most erased defs lose
    // their uses before their turn comes, so forwarding stubs are only
    // created for values a *kept* op consumes — never orphans that sit
    // outside ddmin's index space.
    let mut stubs: Vec<OpRef> = Vec::new();
    for (index, op) in ops.iter().enumerate().rev() {
        if keep.contains(&index) || !op.is_live(&ctx) {
            continue;
        }
        for result in op.results(&ctx) {
            if result.is_unused(&ctx) {
                continue;
            }
            let ty = result.ty(&ctx);
            let src = ctx.op_name("fuzz", "src");
            let stub = ctx.create_op(OperationState::new(src).add_result_types([ty]));
            ctx.insert_op_before(*op, stub);
            let replacement = stub.result(&ctx, 0);
            ctx.replace_all_uses(result, replacement);
            stubs.push(stub);
        }
        ctx.erase_op(*op);
    }
    // Sweep any stub that still ended up unused.
    for stub in stubs {
        if stub.is_live(&ctx) && stub.results(&ctx).all(|r| r.is_unused(&ctx)) {
            ctx.erase_op(stub);
        }
    }
    Some(op_to_string(&ctx, module))
}

/// Classic ddmin over the kept-op set: returns a 1-minimal subset of
/// `0..total` for which `test` still returns true.
fn ddmin(total: usize, mut test: impl FnMut(&HashSet<usize>) -> bool) -> HashSet<usize> {
    let mut kept: Vec<usize> = (0..total).collect();
    if kept.is_empty() {
        return HashSet::new();
    }
    let mut granularity = 2usize;
    while kept.len() >= 2 {
        let chunk = kept.len().div_ceil(granularity);
        let chunks: Vec<Vec<usize>> = kept.chunks(chunk).map(<[usize]>::to_vec).collect();
        let mut progressed = false;

        // Try reducing to a single chunk.
        for part in &chunks {
            let candidate: HashSet<usize> = part.iter().copied().collect();
            if test(&candidate) {
                kept = part.to_vec();
                granularity = 2;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        // Try removing one chunk (keep the complement).
        if chunks.len() > 2 {
            for chunk in &chunks {
                let candidate: HashSet<usize> = kept
                    .iter()
                    .copied()
                    .filter(|x| !chunk.contains(x))
                    .collect();
                if !candidate.is_empty() && test(&candidate) {
                    kept.retain(|x| candidate.contains(x));
                    granularity = (granularity - 1).max(2);
                    progressed = true;
                    break;
                }
            }
        }
        if progressed {
            continue;
        }
        if granularity >= kept.len() {
            break;
        }
        granularity = (granularity * 2).min(kept.len());
    }
    kept.into_iter().collect()
}

/// Greedy attribute removal on an already op-minimal module: drops every
/// attribute whose removal keeps the failure reproducing.
fn reduce_attrs(
    bundle: &DialectBundle,
    text: &str,
    predicate: &mut dyn FnMut(&str) -> bool,
) -> String {
    let mut current = text.to_string();
    loop {
        let mut ctx = bundle.instantiate();
        let Ok(module) = parse_module(&mut ctx, &current) else { return current };
        let ops = module_ops(&ctx, module);
        let mut candidates: Vec<(usize, irdl_ir::Symbol)> = Vec::new();
        for (index, op) in ops.iter().enumerate() {
            for (key, _) in op.attributes(&ctx) {
                candidates.push((index, *key));
            }
        }
        let mut removed_one = false;
        for (index, key) in candidates {
            let mut ctx = bundle.instantiate();
            let Ok(module) = parse_module(&mut ctx, &current) else { break };
            let ops = module_ops(&ctx, module);
            ctx.remove_attr(ops[index], key);
            let candidate = op_to_string(&ctx, module);
            if predicate(&candidate) {
                current = candidate;
                removed_one = true;
                break;
            }
        }
        if !removed_one {
            return current;
        }
    }
}

/// Reduces `text` to a smaller input for which `predicate` still returns
/// true. `predicate(text)` must be true on entry (the caller checked the
/// failure reproduces); the result preserves that property.
pub fn reduce(
    bundle: &DialectBundle,
    text: &str,
    predicate: &mut dyn FnMut(&str) -> bool,
) -> String {
    let mut ctx = bundle.instantiate();
    let Ok(module) = parse_module(&mut ctx, text) else {
        // Unparseable input (a text mutant): minimize by line removal.
        return reduce_lines(text, predicate);
    };
    let total = module_ops(&ctx, module).len();
    drop(ctx);

    let kept = ddmin(total, |keep| {
        render_kept(bundle, text, keep).is_some_and(|candidate| predicate(&candidate))
    });
    let keep: HashSet<usize> = kept;
    let reduced = render_kept(bundle, text, &keep)
        .filter(|candidate| predicate(candidate))
        .unwrap_or_else(|| text.to_string());
    reduce_attrs(bundle, &reduced, predicate)
}

/// Line-based ddmin for inputs that do not parse (lexer/parser findings).
fn reduce_lines(text: &str, predicate: &mut dyn FnMut(&str) -> bool) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let kept = ddmin(lines.len(), |keep| {
        let candidate: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| keep.contains(i))
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        predicate(&candidate)
    });
    let mut indices: Vec<usize> = kept.into_iter().collect();
    indices.sort_unstable();
    let candidate: String = indices.iter().map(|i| format!("{}\n", lines[*i])).collect();
    if predicate(&candidate) {
        candidate
    } else {
        text.to_string()
    }
}
