//! Pattern-catalog generators: declarative rewrite catalogs at the scale
//! the shared matcher automaton is built for.
//!
//! Three sources of catalogs:
//!
//! - [`pat_dialect_spec`] + [`synthetic_catalog`]: a synthetic `pat`
//!   dialect of `N` distinguishable unary ops and `N` fuse patterns all
//!   rooted at the same `pat.root` symbol — the worst case for a
//!   per-pattern scan (root indexing does not discriminate at all) and
//!   the best case for the automaton's def-switch. This is the
//!   `matcherbench` workload.
//! - [`random_catalog`]: seeded random DSL catalogs over the same `pat`
//!   dialect, for the matcher differential oracle. Termination under
//!   greedy driving holds by construction: every rewrite either replaces
//!   the root with an already-existing value or materializes only
//!   `pat.fuse` ops, and no pattern matches `pat.fuse`, so the number of
//!   matchable ops strictly decreases with every application.
//! - [`derive_canon_catalog`]: auto-derived canonicalizations over an
//!   arbitrary compiled corpus — for every eligible op, an
//!   operand-forwarding pattern `d.op(.., %x, ..) ⇒ %x`. Eligibility is
//!   conservative: the forwarded operand and the result must be
//!   constrained to the *same type* (a shared constraint variable or the
//!   same exact type), so the rewrite can never produce type-invalid IR.
//!
//! All generated catalogs are DSL text: they flow through the same
//! `parse_patterns` path user catalogs do, and only reference op symbols
//! already interned by their dialect's registration — so catalogs parsed
//! in one bundle instance are valid in every sibling instance.

use std::fmt::Write as _;

use irdl::Constraint;

use crate::catalog::OpCatalog;
use crate::rng::SplitMix64;

/// IRDL source of the synthetic `pat` dialect: `unary_ops` distinguishable
/// unary ops `u0..u{n-1}`, a shared binary `root`, a `fuse` sink no
/// pattern matches, and a `src` source.
pub fn pat_dialect_spec(unary_ops: usize) -> String {
    let mut spec = String::from("Dialect pat {\n");
    spec.push_str("  Operation src { Results (r: !i32) }\n");
    spec.push_str("  Operation root { Operands (a: !i32, b: !i32) Results (r: !i32) }\n");
    spec.push_str("  Operation fuse { Operands (a: !i32, b: !i32) Results (r: !i32) }\n");
    for i in 0..unary_ops {
        let _ = writeln!(spec, "  Operation u{i} {{ Operands (x: !i32) Results (r: !i32) }}");
    }
    spec.push('}');
    spec
}

/// The `matcherbench` catalog: `patterns` fuse patterns, all rooted at
/// `pat.root`, discriminated only by the defining op of the root's first
/// operand. Pattern `k` is `root(u{k}(%x), %y) ⇒ fuse(%x, %y)`.
///
/// Requires `patterns <= unary_ops` (each pattern needs its own feeder).
pub fn synthetic_catalog(patterns: usize) -> String {
    let mut text = String::new();
    for k in 0..patterns {
        let _ = writeln!(
            text,
            "Pattern fuse{k} {{\n  Match {{\n    %a = pat.u{k}(%x)\n    %r = pat.root(%a, %y)\n  }}\n  Rewrite {{\n    %f = pat.fuse(%x, %y) : typeof(%r)\n    Replace %r with %f\n  }}\n}}"
        );
    }
    text
}

/// A seeded random catalog over the `pat` dialect with `unary_ops` unary
/// ops: each pattern matches a small random DAG (root at `pat.root` or a
/// `pat.u*`, operands free, repeated, or fed by a random unary producer)
/// and rewrites to `pat.fuse` of bound values or straight to a bound
/// value. See the module docs for why every such catalog terminates.
pub fn random_catalog(unary_ops: usize, patterns: usize, rng: &mut SplitMix64) -> String {
    let mut text = String::new();
    for k in 0..patterns {
        let benefit = rng.range(1, 4);
        let _ = writeln!(text, "Pattern rand{k} benefit {benefit} {{");
        text.push_str("  Match {\n");
        // Optional producer chain feeding the root's first operand,
        // emitted innermost-first: %p0 = u(%x); %p1 = u(%p0); ...
        let producers = rng.below(3); // 0, 1, or 2 deep
        let mut first_operand = "%x".to_string();
        for depth in 0..producers {
            let u = rng.below(unary_ops);
            let _ = writeln!(text, "    %p{depth} = pat.u{u}({first_operand})");
            first_operand = format!("%p{depth}");
        }
        let rooted_at_root = rng.chance(1, 2);
        if rooted_at_root {
            // Second operand: fresh var, or repeat of the first (forcing a
            // ValueEq predicate).
            let second =
                if producers == 0 && rng.chance(1, 3) { first_operand.as_str() } else { "%y" };
            let _ = writeln!(text, "    %r = pat.root({first_operand}, {second})");
        } else {
            let u = rng.below(unary_ops);
            let _ = writeln!(text, "    %r = pat.u{u}({first_operand})");
        }
        text.push_str("  }\n  Rewrite {\n");
        // Replacement: a fuse of two bound values, or a bound value
        // directly. Every bound value is an i32, so both are type-sound.
        let bound = if producers > 0 { "%x" } else { first_operand.as_str() };
        if rng.chance(2, 3) {
            let _ = writeln!(text, "    %f = pat.fuse({bound}, {bound}) : typeof(%r)");
            text.push_str("    Replace %r with %f\n");
        } else {
            let _ = writeln!(text, "    Replace %r with {bound}");
        }
        text.push_str("  }\n}\n");
    }
    text
}

/// Returns whether `a` and `b` pin the same runtime type: the same
/// constraint variable (one binding per verification, so both sides see
/// one type) or the same exact type. Anything looser (e.g. two `!AnyFloat`
/// occurrences) may admit *different* types on each side, so forwarding
/// would not be type-preserving.
fn same_pinned_type(a: &Constraint, b: &Constraint) -> bool {
    match (a, b) {
        (Constraint::Var(x), Constraint::Var(y)) => x == y,
        (Constraint::ExactType(x), Constraint::ExactType(y)) => x == y,
        _ => false,
    }
}

/// Auto-derives an operand-forwarding canonicalization catalog from a
/// compiled op corpus: for every op with one result, no regions,
/// successors, required attributes, or native verifier, and some operand
/// whose constraint pins the same type as the result, emit
/// `Pattern canon_<d>_<op> { Match { %r = d.op(..) } Rewrite { Replace %r with %that_operand } }`.
///
/// Returns the DSL text and the number of patterns derived.
pub fn derive_canon_catalog(ctx: &irdl_ir::Context, catalog: &OpCatalog) -> (String, usize) {
    let mut text = String::new();
    let mut derived = 0usize;
    for op in &catalog.ops {
        if op.results.len() != 1
            || op.operands.is_empty()
            || !op.regions.is_empty()
            || op.successors.is_some()
            || !op.attributes.is_empty()
            || op.native_verifier.is_some()
        {
            continue;
        }
        let all_single = op
            .operands
            .iter()
            .chain(op.results.iter())
            .all(|arg| matches!(arg.variadicity, irdl::ast::Variadicity::Single));
        if !all_single {
            continue;
        }
        let result = &op.results[0].constraint;
        let Some(forward) =
            op.operands.iter().position(|o| same_pinned_type(&o.constraint, result))
        else {
            continue;
        };
        let dialect = ctx.symbol_str(op.name.dialect);
        let opname = ctx.symbol_str(op.name.name);
        let operands: Vec<String> = (0..op.operands.len()).map(|i| format!("%x{i}")).collect();
        let _ = writeln!(
            text,
            "Pattern canon_{dialect}_{opname} {{\n  Match {{\n    %r = {dialect}.{opname}({})\n  }}\n  Rewrite {{\n    Replace %r with %x{forward}\n  }}\n}}",
            operands.join(", "),
        );
        derived += 1;
    }
    (text, derived)
}

#[cfg(test)]
mod tests {
    use super::*;

    use irdl_rewrite::dsl::parse_patterns;

    use crate::harness::FuzzTarget;

    fn pat_target(unary_ops: usize) -> FuzzTarget {
        FuzzTarget::from_sources(
            &[("pat".to_string(), pat_dialect_spec(unary_ops))],
            &irdl::NativeRegistry::new(),
        )
        .expect("pat dialect compiles")
    }

    #[test]
    fn synthetic_catalog_parses_and_every_pattern_fires() {
        let target = pat_target(4);
        let mut ctx = target.bundle.instantiate();
        let patterns = parse_patterns(&mut ctx, &synthetic_catalog(4)).expect("catalog parses");
        assert_eq!(patterns.patterns().len(), 4);

        // One root per feeder: every pattern in the catalog must fire once.
        let mut module = String::new();
        let _ = writeln!(module, "%s = \"pat.src\"() : () -> i32");
        for k in 0..4 {
            let _ = writeln!(module, "%u{k} = \"pat.u{k}\"(%s) : (i32) -> i32");
            let _ = writeln!(module, "%r{k} = \"pat.root\"(%u{k}, %s) : (i32, i32) -> i32");
        }
        let root = irdl_ir::parse::parse_module(&mut ctx, &module).expect("module parses");
        let stats = irdl_rewrite::rewrite_greedily(&mut ctx, root, &patterns);
        assert_eq!(stats.rewrites, 4);
        let out = irdl_ir::print::op_to_string(&ctx, root);
        assert!(out.contains("pat.fuse") && !out.contains("pat.root"), "{out}");
    }

    #[test]
    fn random_catalogs_parse_and_drive_for_many_seeds() {
        let target = pat_target(8);
        for seed in 0..32u64 {
            let mut rng = SplitMix64::new(seed);
            let catalog = random_catalog(8, 1 + rng.below(8), &mut rng);
            let mut ctx = target.bundle.instantiate();
            let patterns = parse_patterns(&mut ctx, &catalog)
                .unwrap_or_else(|e| panic!("seed {seed}: catalog does not parse: {e}\n{catalog}"));
            assert!(!patterns.patterns().is_empty());
            // Drive a small module to a fixpoint: termination by
            // construction means this returns.
            let module = "%s = \"pat.src\"() : () -> i32\n\
                          %a = \"pat.u0\"(%s) : (i32) -> i32\n\
                          %b = \"pat.u1\"(%a) : (i32) -> i32\n\
                          %r = \"pat.root\"(%b, %s) : (i32, i32) -> i32\n";
            let root = irdl_ir::parse::parse_module(&mut ctx, module).expect("module parses");
            irdl_rewrite::rewrite_greedily(&mut ctx, root, &patterns);
        }
    }

    #[test]
    fn corpus_canon_catalog_parses_and_only_forwards_pinned_types() {
        let target = FuzzTarget::corpus().expect("corpus compiles");
        let ctx = target.bundle.instantiate();
        let (catalog, derived) = derive_canon_catalog(&ctx, &target.catalog);
        assert!(derived > 0, "corpus should yield at least one canon pattern");
        assert_eq!(catalog.matches("Pattern canon_").count(), derived);
        let mut ctx = target.bundle.instantiate();
        let patterns = parse_patterns(&mut ctx, &catalog).expect("canon catalog parses");
        assert_eq!(patterns.patterns().len(), derived);
    }
}
