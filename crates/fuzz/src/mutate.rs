//! Mutation engines: byte-level splices over module text and journaled
//! structured mutations over live IR.
//!
//! Text mutations stress the lexer/parser on near-miss inputs (the parser
//! must reject gracefully, never panic, and accepted mutants must still
//! satisfy the print fixpoint). Structured mutations go through the
//! [`Rewriter`] so every change is journaled — that makes each mutation a
//! differential test of the incremental verifier against the full walk,
//! on *both* verdict polarities: half of the mutation menu preserves
//! validity, the other half deliberately breaks dominance, typing, or
//! required attributes to cover the rejection paths.

use irdl_ir::{ChangeJournal, Context, OperationState, OpRef, Value};
use irdl_rewrite::Rewriter;

use crate::rng::SplitMix64;

// ---------------------------------------------------------------------------
// Text mutation
// ---------------------------------------------------------------------------

/// Tokens spliced into text mutants: structure-bearing characters the
/// grammar cares about.
const SPLICE_TOKENS: [&str; 10] = ["\"", "%", "(", ")", ":", "->", "}", "{", ",", "^"];

/// Applies 1–3 random byte-level edits to `text`.
pub fn mutate_text(text: &str, rng: &mut SplitMix64) -> String {
    let mut out = text.as_bytes().to_vec();
    let edits = rng.range(1, 4);
    for _ in 0..edits {
        if out.is_empty() {
            break;
        }
        match rng.below(5) {
            // Delete a short span.
            0 => {
                let start = rng.below(out.len());
                let len = rng.range(1, 9).min(out.len() - start);
                out.drain(start..start + len);
            }
            // Duplicate a short span in place.
            1 => {
                let start = rng.below(out.len());
                let len = rng.range(1, 9).min(out.len() - start);
                let span: Vec<u8> = out[start..start + len].to_vec();
                out.splice(start..start, span);
            }
            // Overwrite one byte with a random printable character.
            2 => {
                let at = rng.below(out.len());
                out[at] = b' ' + (rng.below(95) as u8);
            }
            // Insert a grammar token.
            3 => {
                let at = rng.below(out.len() + 1);
                let token = SPLICE_TOKENS[rng.below(SPLICE_TOKENS.len())];
                out.splice(at..at, token.bytes());
            }
            // Truncate the tail.
            _ => {
                let keep = rng.below(out.len());
                out.truncate(keep);
            }
        }
    }
    // Mutations operate on bytes; the source is ASCII so this is
    // effectively infallible, but stay defensive.
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Structured mutation
// ---------------------------------------------------------------------------

/// Whether a structured mutation is allowed to invalidate the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationPolicy {
    /// Only validity-preserving mutations.
    ValidOnly,
    /// Validity-preserving and deliberately-invalid mutations mixed.
    AllowInvalid,
}

/// All ops in the module in deterministic pre-order, excluding the module
/// op itself.
fn all_ops(ctx: &Context, module: OpRef) -> Vec<OpRef> {
    irdl_ir::walk::collect_ops(ctx, module).into_iter().filter(|&op| op != module).collect()
}

/// Results defined by ops *before* `anchor` in the same block, i.e.
/// values that dominate `anchor`.
fn earlier_values(ctx: &Context, anchor: OpRef) -> Vec<Value> {
    let Some(block) = anchor.parent_block(ctx) else { return Vec::new() };
    let mut values: Vec<Value> = block.args(ctx);
    for &op in block.ops(ctx) {
        if op == anchor {
            break;
        }
        values.extend(op.results(ctx));
    }
    values
}

/// Results defined by ops *after* `anchor` in the same block (uses of
/// these from `anchor` break dominance).
fn later_values(ctx: &Context, anchor: OpRef) -> Vec<Value> {
    let Some(block) = anchor.parent_block(ctx) else { return Vec::new() };
    let mut values = Vec::new();
    let mut seen_anchor = false;
    for &op in block.ops(ctx) {
        if op == anchor {
            seen_anchor = true;
            continue;
        }
        if seen_anchor {
            values.extend(op.results(ctx));
        }
    }
    values
}

/// Applies one random journaled mutation somewhere in `module`. Returns
/// the name of the mutation applied, or `None` if the drawn variant was
/// inapplicable at the drawn anchor (the journal is untouched then).
pub fn mutate_structured(
    ctx: &mut Context,
    module: OpRef,
    journal: &mut ChangeJournal,
    policy: MutationPolicy,
    rng: &mut SplitMix64,
) -> Option<&'static str> {
    let ops = all_ops(ctx, module);
    if ops.is_empty() {
        return None;
    }
    let anchor = ops[rng.below(ops.len())];
    if !anchor.is_live(ctx) {
        return None;
    }
    let variants = match policy {
        MutationPolicy::ValidOnly => 5,
        MutationPolicy::AllowInvalid => 9,
    };
    let src = ctx.op_name("fuzz", "src");
    match rng.below(variants) {
        // --- validity-preserving -----------------------------------------
        // Insert a fresh source op before the anchor.
        0 => {
            let ty = ctx.i32_type();
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.insert_before(anchor, OperationState::new(src).add_result_types([ty]));
            Some("insert-source")
        }
        // Erase an unused source op.
        1 => {
            if anchor.name(ctx) != src || !anchor.regions(ctx).is_empty() {
                return None;
            }
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.erase_if_unused(anchor).then_some("erase-unused")
        }
        // Append a fresh source op, then move it before the anchor
        // (exercises order-key refresh and displaced-neighbour journaling).
        2 => {
            let block = anchor.parent_block(ctx)?;
            let ty = ctx.f32_type();
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            let fresh = rewriter.append(block, OperationState::new(src).add_result_types([ty]));
            rewriter.move_before(fresh, anchor);
            Some("append-move")
        }
        // Retarget one operand to an earlier-defined value of the same
        // type: dominance and typing both preserved.
        3 => {
            if anchor.num_operands(ctx) == 0 {
                return None;
            }
            let slot = rng.below(anchor.num_operands(ctx));
            let current_ty = anchor.operand(ctx, slot).ty(ctx);
            let candidates: Vec<Value> = earlier_values(ctx, anchor)
                .into_iter()
                .filter(|v| v.ty(ctx) == current_ty)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let value = *rng.choose(&candidates);
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.set_operand(anchor, slot, value);
            Some("retarget-earlier")
        }
        // Forward all uses of a result to an equal-typed earlier value
        // (every use of the result sits after the anchor, hence after the
        // earlier definition too).
        4 => {
            if anchor.num_results(ctx) == 0 {
                return None;
            }
            let result = anchor.result(ctx, rng.below(anchor.num_results(ctx)));
            let ty = result.ty(ctx);
            let candidates: Vec<Value> = earlier_values(ctx, anchor)
                .into_iter()
                .filter(|v| v.ty(ctx) == ty)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let replacement = *rng.choose(&candidates);
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.replace_all_uses(result, replacement);
            Some("forward-uses")
        }
        // --- deliberately invalid ----------------------------------------
        // Insert a use of the anchor's own result before the anchor:
        // textbook dominance break.
        5 => {
            if anchor.num_results(ctx) == 0 {
                return None;
            }
            let bad = anchor.result(ctx, 0);
            let user = ctx.op_name("fuzz", "use");
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.insert_before(anchor, OperationState::new(user).add_operands([bad]));
            Some("use-before-def")
        }
        // Retarget an operand to a later-defined value: dominance break
        // through set_operand.
        6 => {
            if anchor.num_operands(ctx) == 0 {
                return None;
            }
            let slot = rng.below(anchor.num_operands(ctx));
            let candidates = later_values(ctx, anchor);
            if candidates.is_empty() {
                return None;
            }
            let value = *rng.choose(&candidates);
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.set_operand(anchor, slot, value);
            Some("retarget-later")
        }
        // Drop an attribute from a registered op with required attributes:
        // the synthesized verifier must reject the instance.
        7 => {
            let attrs = anchor.attributes(ctx);
            if attrs.is_empty() || ctx.op_info(anchor).is_none() {
                return None;
            }
            let key = attrs[rng.below(attrs.len())].0;
            ctx.remove_attr(anchor, key);
            journal.note_modified(anchor);
            Some("drop-attr")
        }
        // Overwrite an attribute of a registered op with a unit attr (a
        // type confusion the constraint checker must catch — unless the
        // constraint genuinely admits unit).
        _ => {
            let attrs = anchor.attributes(ctx);
            if attrs.is_empty() || ctx.op_info(anchor).is_none() {
                return None;
            }
            let key = attrs[rng.below(attrs.len())].0;
            let unit = ctx.unit_attr();
            ctx.set_attr(anchor, key, unit);
            journal.note_modified(anchor);
            Some("poison-attr")
        }
    }
}
