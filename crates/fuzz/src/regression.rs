//! Regression-corpus storage: minimized reproducers plus their seeds.
//!
//! Every case is a plain `.mlir` file whose leading `//` comment lines
//! carry the metadata (seed, oracle, provenance). The IR parser treats
//! `//` as line comments, so a case file replays verbatim; the metadata
//! survives for humans and for the replay harness.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A stored regression case.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// Seed of the run that found it (hex in the file header).
    pub seed: u64,
    /// The oracle that diverged.
    pub oracle: String,
    /// The (minimized) input text, comment lines included.
    pub text: String,
}

/// Writes a case file named `<name>.mlir` under `dir`, creating the
/// directory if needed. Returns the path written.
pub fn write_regression(
    dir: &Path,
    name: &str,
    seed: u64,
    oracle: &str,
    text: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.mlir"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "// irdl-fuzz regression case")?;
    writeln!(file, "// seed: {seed:#x}")?;
    writeln!(file, "// oracle: {oracle}")?;
    write!(file, "{text}")?;
    if !text.ends_with('\n') {
        writeln!(file)?;
    }
    Ok(path)
}

/// Loads a case file, parsing the header comments back out. Missing
/// metadata defaults to seed 0 / oracle "unknown" (hand-written cases).
pub fn load_case(path: &Path) -> std::io::Result<RegressionCase> {
    let text = std::fs::read_to_string(path)?;
    let mut seed = 0u64;
    let mut oracle = "unknown".to_string();
    for line in text.lines() {
        if !line.starts_with("//") {
            break;
        }
        if let Some(value) = line.strip_prefix("// seed:") {
            let value = value.trim();
            let parsed = match value.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => value.parse(),
            };
            if let Ok(parsed) = parsed {
                seed = parsed;
            }
        } else if let Some(value) = line.strip_prefix("// oracle:") {
            oracle = value.trim().to_string();
        }
    }
    Ok(RegressionCase { seed, oracle, text })
}
