//! Deterministic fuzzing for the IRDL stack.
//!
//! The paper's central claim — dialect definitions as *data* — makes the
//! whole stack fuzzable from one seed: op shapes are introspectable
//! ([`catalog`]), so a structured generator ([`genmod`]) emits well-formed
//! modules against any compiled dialect, a spec generator ([`genspec`])
//! emits random-but-valid definitions through the real frontend, a
//! pattern-catalog generator ([`genpat`]) emits random declarative
//! rewrite catalogs, and a mutation engine ([`mutate`]) covers the reject
//! paths. Every input runs
//! through eight differential oracles ([`oracle`]) that cross-check the
//! repo's fast paths against their reference implementations; failing
//! inputs are shrunk by a ddmin reducer ([`reduce`]) and stored with
//! their seed under `fuzz/corpus-regressions/`.
//!
//! Everything is reproducible: the only randomness source is a
//! [`rng::SplitMix64`] stream derived from the run seed, and generation
//! only enumerates dialect data in declaration order (never registry map
//! order), so two runs with the same seed are byte-identical.

pub mod catalog;
pub mod genmod;
pub mod genpat;
pub mod genscale;
pub mod genspec;
pub mod harness;
pub mod mutate;
pub mod oracle;
pub mod reduce;
pub mod regression;
pub mod rng;

pub use catalog::OpCatalog;
pub use genmod::{generate_module, GenConfig};
pub use genpat::{derive_canon_catalog, pat_dialect_spec, random_catalog, synthetic_catalog};
pub use genscale::{generate_scale_module, scale_bundle, ScaleConfig, ScaleShape};
pub use genspec::generate_spec;
pub use harness::{run_fuzz, run_fuzz_on, FuzzOptions, FuzzReport, FuzzTarget};
pub use mutate::{mutate_structured, mutate_text, MutationPolicy};
pub use oracle::{
    check_matcher, check_parallel_verify, check_translation_validation, oracle_patterns,
    replay_all, tv_patterns, OracleFailure, OraclePatterns, TvPatterns,
};
pub use reduce::reduce;
pub use regression::{load_case, write_regression, RegressionCase};
pub use rng::SplitMix64;
