//! Deterministic giant-module generation for the intra-module
//! parallelism benchmarks.
//!
//! Unlike [`crate::genmod`], which samples random shapes from compiled
//! constraints, this generator is purely positional: the same
//! [`ScaleConfig`] always produces the same module, op for op, with no
//! PRNG involved — so benches and determinism tests can regenerate their
//! input instead of storing multi-megabyte fixtures.
//!
//! Two shapes stress the two partitioning axes of
//! [`ModuleVerifier::verify_parallel`]:
//!
//! - **Wide**: one flat top-level block of `scale.src`/`scale.fma` ops —
//!   the pure fan-out case, chunked directly.
//! - **Deep**: a chain of nested `scale.wrap` regions, each holding a
//!   slab of ops — forces the planner to split large subtrees into
//!   placement shells plus per-region units.
//!
//! `invalid_every` seeds deterministic use-before-def violations, giving
//! the byte-identical-diagnostics tests a giant module with a known,
//! ordered error list.
//!
//! [`ModuleVerifier::verify_parallel`]: irdl_ir::verify::ModuleVerifier::verify_parallel

use irdl::DialectBundle;
use irdl_ir::{BlockRef, Context, OperationState, OpRef, Value};

/// The `scale` dialect: a source, a 3-ary arithmetic op (so verification
/// touches operands and dominance), and a region-bearing wrapper with a
/// required terminator (so deep modules exercise region rules and hooks).
pub const SCALE_SPEC: &str = r#"
Dialect scale {
  Summary "Synthetic dialect for giant-module scale benchmarks"
  Operation src {
    Results (r: !f32)
    Summary "Produce a value from nothing"
  }
  Operation fma {
    Operands (a: !f32, b: !f32, c: !f32)
    Results (r: !f32)
    Summary "Fused multiply-add over three prior values"
  }
  Operation yield {
    Successors ()
    Summary "Terminate a scale.wrap region"
  }
  Operation wrap {
    Results (r: !f32)
    Region body { Terminator yield }
    Summary "Wrap a nested computation region"
  }
}
"#;

/// Compiles the `scale` dialect into a sealed bundle.
///
/// # Errors
///
/// Propagates frontend diagnostics (a compile failure here is a bug in
/// [`SCALE_SPEC`]).
pub fn scale_bundle() -> Result<DialectBundle, String> {
    let sources = vec![("scale".to_string(), SCALE_SPEC.to_string())];
    DialectBundle::compile(&sources, &irdl::NativeRegistry::new()).map_err(|d| d.to_string())
}

/// Module shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleShape {
    /// One flat top-level block (wide fan-out).
    Wide,
    /// A chain of nested `scale.wrap` regions, each holding a slab of ops.
    Deep,
}

/// Configuration for one deterministic module.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Minimum total op count (the generator may emit slightly more to
    /// round out region slabs and terminators).
    pub ops: usize,
    /// Wide fan-out or deep nesting.
    pub shape: ScaleShape,
    /// When `Some(n)`, every `n`-th emitted op starts a use-before-def
    /// pair (a `scale.fma` placed before the `scale.src` defining its
    /// first operand), producing one dominance diagnostic at a known
    /// position. `None` generates a fully valid module.
    pub invalid_every: Option<usize>,
}

impl ScaleConfig {
    /// A valid module of at least `ops` operations.
    pub fn valid(ops: usize, shape: ScaleShape) -> ScaleConfig {
        ScaleConfig { ops, shape, invalid_every: None }
    }
}

/// Ops per nesting level of a [`ScaleShape::Deep`] module.
const DEEP_SLAB: usize = 512;

/// Depth cap for [`ScaleShape::Deep`]: verification, printing, and
/// parsing all recurse per nesting level, so depth stays bounded and the
/// slab widens instead once a module outgrows `DEEP_MAX_DEPTH * DEEP_SLAB`.
const DEEP_MAX_DEPTH: usize = 1024;

/// Builds one deterministic module into `ctx` (whose dialects should come
/// from [`scale_bundle`]) and returns it with its exact total op count,
/// the module op included.
pub fn generate_scale_module(ctx: &mut Context, config: &ScaleConfig) -> (OpRef, usize) {
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let mut emitter = Emitter { ctx, emitted: 0, invalid_every: config.invalid_every };
    match config.shape {
        ScaleShape::Wide => emitter.fill_block(block, config.ops),
        ScaleShape::Deep => {
            let depth = config.ops.div_ceil(DEEP_SLAB).clamp(1, DEEP_MAX_DEPTH);
            let slab = config.ops.div_ceil(depth);
            emitter.fill_deep(block, depth, slab);
        }
    }
    let total = emitter.emitted + 1;
    (module, total)
}

struct Emitter<'c> {
    ctx: &'c mut Context,
    emitted: usize,
    invalid_every: Option<usize>,
}

impl Emitter<'_> {
    /// Appends at least `count` ops to `block`: a rolling mix of
    /// `scale.src` and `scale.fma` over the three most recent values.
    fn fill_block(&mut self, block: BlockRef, count: usize) {
        let f32t = self.ctx.f32_type();
        let src = self.ctx.op_name("scale", "src");
        let fma = self.ctx.op_name("scale", "fma");
        let mut recent: Vec<Value> = Vec::with_capacity(64);
        let mut produced = 0;
        while produced < count {
            if recent.len() < 3 || produced % 7 == 0 {
                let op = self.ctx.create_op(OperationState::new(src).add_result_types([f32t]));
                self.ctx.append_op(block, op);
                recent.push(op.result(self.ctx, 0));
                self.emitted += 1;
                produced += 1;
            } else {
                let n = recent.len();
                let (a, b, c) = (recent[n - 1], recent[n - 2], recent[n - 3]);
                if self.invalid_due() {
                    // Use-before-def: the fma consumes the result of a src
                    // appended *after* it. Exactly one dominance
                    // diagnostic, at a deterministic position.
                    let def =
                        self.ctx.create_op(OperationState::new(src).add_result_types([f32t]));
                    let v = def.result(self.ctx, 0);
                    let bad = self.ctx.create_op(
                        OperationState::new(fma).add_operands([v, a, b]).add_result_types([f32t]),
                    );
                    self.ctx.append_op(block, bad);
                    self.ctx.append_op(block, def);
                    recent.push(def.result(self.ctx, 0));
                    self.emitted += 2;
                    produced += 2;
                } else {
                    let op = self.ctx.create_op(
                        OperationState::new(fma)
                            .add_operands([a, b, c])
                            .add_result_types([f32t]),
                    );
                    self.ctx.append_op(block, op);
                    recent.push(op.result(self.ctx, 0));
                    self.emitted += 1;
                    produced += 1;
                }
            }
            if recent.len() == 64 {
                recent.drain(..61);
            }
        }
    }

    /// `depth` nested `scale.wrap` levels, each holding a `slab`-op block
    /// plus the next level and its `scale.yield` terminator.
    fn fill_deep(&mut self, block: BlockRef, depth: usize, slab: usize) {
        self.fill_block(block, slab);
        if depth == 0 {
            return;
        }
        let (region, entry) = self.ctx.create_region_with_entry([]);
        self.fill_deep(entry, depth - 1, slab);
        let yield_name = self.ctx.op_name("scale", "yield");
        let term = self.ctx.create_op(OperationState::new(yield_name));
        self.ctx.append_op(entry, term);
        self.emitted += 1;
        let f32t = self.ctx.f32_type();
        let wrap_name = self.ctx.op_name("scale", "wrap");
        let wrap = self.ctx.create_op(
            OperationState::new(wrap_name).add_result_types([f32t]).add_regions([region]),
        );
        self.ctx.append_op(block, wrap);
        self.emitted += 1;
    }

    fn invalid_due(&self) -> bool {
        match self.invalid_every {
            Some(every) => every > 0 && (self.emitted + 1).is_multiple_of(every),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::print::op_to_string;
    use irdl_ir::verify::ModuleVerifier;

    #[test]
    fn scale_spec_compiles() {
        scale_bundle().unwrap();
    }

    #[test]
    fn valid_modules_verify_under_hooks() {
        let bundle = scale_bundle().unwrap();
        for shape in [ScaleShape::Wide, ScaleShape::Deep] {
            let mut ctx = bundle.instantiate();
            let (module, total) =
                generate_scale_module(&mut ctx, &ScaleConfig::valid(3000, shape));
            assert!(total >= 3000, "{shape:?}: {total}");
            ModuleVerifier::new().verify(&ctx, module).unwrap_or_else(|errs| {
                panic!("{shape:?} module must verify, got {}", errs[0])
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let bundle = scale_bundle().unwrap();
        let config =
            ScaleConfig { ops: 2000, shape: ScaleShape::Deep, invalid_every: Some(101) };
        let render = || {
            let mut ctx = bundle.instantiate();
            let (module, total) = generate_scale_module(&mut ctx, &config);
            (op_to_string(&ctx, module), total)
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn invalid_every_seeds_dominance_errors() {
        let bundle = scale_bundle().unwrap();
        let mut ctx = bundle.instantiate();
        let config =
            ScaleConfig { ops: 2000, shape: ScaleShape::Wide, invalid_every: Some(97) };
        let (module, _) = generate_scale_module(&mut ctx, &config);
        let errs = ModuleVerifier::new().verify(&ctx, module).unwrap_err();
        assert!(!errs.is_empty());
        assert!(
            errs.iter().all(|d| d.message().contains("dominates")),
            "only dominance errors expected, got {}",
            errs[0]
        );
    }
}
