//! The seed-reproducibility contract, end to end.
//!
//! `irdl-fuzz run --seed S` twice must be byte-identical: same log, same
//! counters, same findings. This is what makes a stored `(seed, oracle)`
//! pair a *reproducer* rather than a hint, and it guards against
//! accidental nondeterminism leaks (HashMap iteration order, timestamps,
//! pointer-derived values) anywhere in the generation or oracle stack.

use irdl_fuzz_lib::{run_fuzz_on, FuzzOptions, FuzzTarget};

fn options(seed: u64, iters: u64) -> FuzzOptions {
    FuzzOptions { seed, iters, ..FuzzOptions::default() }
}

#[test]
fn same_seed_is_byte_identical() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let a = run_fuzz_on(&target, &options(0xD15EA5E, 24)).expect("run");
    let b = run_fuzz_on(&target, &options(0xD15EA5E, 24)).expect("run");
    assert_eq!(a.log, b.log, "logs must be byte-identical for equal seeds");
    assert_eq!(a.iters, b.iters);
    assert_eq!(a.modules, b.modules);
    assert_eq!(a.mutants, b.mutants);
    assert_eq!(a.specs, b.specs);
    assert_eq!(a.failures.len(), b.failures.len());
    for (fa, fb) in a.failures.iter().zip(&b.failures) {
        assert_eq!(fa.oracle, fb.oracle);
        assert_eq!(fa.detail, fb.detail);
        assert_eq!(fa.input, fb.input);
    }
}

/// A fresh target (recompiled corpus, different contexts and interning
/// history) must not change the stream either: determinism may not hinge
/// on memory layout or context identity.
#[test]
fn same_seed_across_fresh_targets() {
    let a = {
        let target = FuzzTarget::corpus().expect("corpus compiles");
        run_fuzz_on(&target, &options(0xFACADE, 16)).expect("run").log
    };
    let b = {
        let target = FuzzTarget::corpus().expect("corpus compiles");
        run_fuzz_on(&target, &options(0xFACADE, 16)).expect("run").log
    };
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let a = run_fuzz_on(&target, &options(1, 16)).expect("run");
    let b = run_fuzz_on(&target, &options(2, 16)).expect("run");
    // The headers differ trivially; the interesting check is that the
    // generated content actually depends on the seed.
    assert_ne!(a.log, b.log);
}

/// Smoke: a default run over the corpus stays green.
#[test]
fn short_run_is_green() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let report = run_fuzz_on(&target, &options(0xC0FFEE, 32)).expect("run");
    assert!(
        report.failures.is_empty(),
        "oracle diverged: {}",
        report
            .failures
            .iter()
            .map(|f| format!("[{}] {}\n{}", f.oracle, f.detail, f.input))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.iters, 32);
}
