//! The evaluator registry: executable semantics registered per op name.
//!
//! Semantics follow the same registration model as the verifier's
//! [`NativeRegistry`](irdl::NativeRegistry) hooks: a dialect's operations
//! gain behavior by registering an [`OpEvaluator`] under the op's
//! *qualified name* (`"cmath.mul"`). Names — not context-relative symbols —
//! key the table, so one registry serves every [`Context`] instantiated
//! from a bundle, hand-built test contexts, and rehydrated bytecode
//! bundles alike. A compiled [`DialectBundle`](irdl::DialectBundle) carries
//! its semantics as a typed bundle artifact (see [`crate::Semantics`]),
//! mirroring how native verifier hooks travel by name.
//!
//! The registry also owns the *constant model* used by constant folding:
//! which ops denote compile-time constants ([`OpEvaluator::constant`]) and
//! how to materialize a computed value back into IR as a constant op
//! ([`EvalRegistry::register_materializer`]) — the two hooks MLIR folds
//! are built from.

use std::collections::HashMap;
use std::sync::Arc;

use irdl_ir::{Context, OperationState, OpRef, Type};

use crate::machine::Machine;
use crate::trap::Trap;
use crate::value::EvalValue;

/// Executable semantics for one operation.
pub trait OpEvaluator: Send + Sync {
    /// Evaluates `op`, whose operand values are available through
    /// `machine`. Returns one value per result (the machine pads or
    /// truncates deterministically on a mismatch) or a structured trap.
    ///
    /// # Errors
    ///
    /// Returns the trap that aborts execution.
    fn eval(&self, machine: &mut Machine<'_>, op: OpRef) -> Result<Vec<EvalValue>, Trap>;

    /// If `op` denotes a compile-time constant, its result values. This is
    /// what the folder uses to read operands — only ops answering `Some`
    /// here count as constant inputs to a fold.
    fn constant(&self, ctx: &Context, op: OpRef) -> Option<Vec<EvalValue>> {
        let _ = (ctx, op);
        None
    }
}

/// An [`OpEvaluator`] built from a plain closure (no constant model).
struct FnEvaluator<F>(F);

impl<F> OpEvaluator for FnEvaluator<F>
where
    F: Fn(&mut Machine<'_>, OpRef) -> Result<Vec<EvalValue>, Trap> + Send + Sync,
{
    fn eval(&self, machine: &mut Machine<'_>, op: OpRef) -> Result<Vec<EvalValue>, Trap> {
        (self.0)(machine, op)
    }
}

/// An [`OpEvaluator`] for constant ops: a reader maps the op's attributes
/// to its values; evaluation returns the same values.
struct ConstEvaluator<R>(R);

impl<R> OpEvaluator for ConstEvaluator<R>
where
    R: Fn(&Context, OpRef) -> Option<Vec<EvalValue>> + Send + Sync,
{
    fn eval(&self, machine: &mut Machine<'_>, op: OpRef) -> Result<Vec<EvalValue>, Trap> {
        match (self.0)(machine.ctx(), op) {
            Some(values) => Ok(values),
            // A constant whose payload does not decode falls back to the
            // uninterpreted model — deterministic, never a panic.
            None => machine.uninterpreted(op),
        }
    }

    fn constant(&self, ctx: &Context, op: OpRef) -> Option<Vec<EvalValue>> {
        (self.0)(ctx, op)
    }
}

/// Materializes `value` as a new constant op of result type `ty`, or
/// `None` when the dialect has no constant op able to carry the value.
pub type ConstMaterializer =
    Arc<dyn Fn(&mut Context, &EvalValue, Type) -> Option<OperationState> + Send + Sync>;

/// The table of registered semantics, keyed by qualified op name.
#[derive(Default, Clone)]
pub struct EvalRegistry {
    evaluators: HashMap<String, Arc<dyn OpEvaluator>>,
    materializers: Vec<ConstMaterializer>,
}

impl std::fmt::Debug for EvalRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.evaluators.keys().collect();
        names.sort();
        f.debug_struct("EvalRegistry")
            .field("evaluators", &names)
            .field("materializers", &self.materializers.len())
            .finish()
    }
}

impl EvalRegistry {
    /// An empty registry: every op is uninterpreted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers semantics for the qualified op name `name` (`"scf.if_op"`).
    pub fn register(&mut self, name: impl Into<String>, evaluator: Arc<dyn OpEvaluator>) {
        self.evaluators.insert(name.into(), evaluator);
    }

    /// Registers closure semantics for `name`.
    pub fn register_fn(
        &mut self,
        name: impl Into<String>,
        eval: impl Fn(&mut Machine<'_>, OpRef) -> Result<Vec<EvalValue>, Trap> + Send + Sync + 'static,
    ) {
        self.register(name, Arc::new(FnEvaluator(eval)));
    }

    /// Registers a constant op: `read` maps the op (its attributes) to its
    /// values; evaluation returns the same values, and the folder treats
    /// the op as a constant input.
    pub fn register_const(
        &mut self,
        name: impl Into<String>,
        read: impl Fn(&Context, OpRef) -> Option<Vec<EvalValue>> + Send + Sync + 'static,
    ) {
        self.register(name, Arc::new(ConstEvaluator(read)));
    }

    /// Registers a constant materializer. Materializers are tried in
    /// registration order; the first `Some` wins.
    pub fn register_materializer(&mut self, materializer: ConstMaterializer) {
        self.materializers.push(materializer);
    }

    /// The evaluator registered under `name`, if any.
    pub fn evaluator(&self, name: &str) -> Option<Arc<dyn OpEvaluator>> {
        self.evaluators.get(name).cloned()
    }

    /// The evaluator for `op`, resolved through its qualified name.
    pub fn evaluator_for(&self, ctx: &Context, op: OpRef) -> Option<Arc<dyn OpEvaluator>> {
        self.evaluators.get(&op.name(ctx).display(ctx)).cloned()
    }

    /// `op`'s compile-time values, if its registered semantics declare it
    /// a constant.
    pub fn constant_values(&self, ctx: &Context, op: OpRef) -> Option<Vec<EvalValue>> {
        self.evaluator_for(ctx, op)?.constant(ctx, op)
    }

    /// Builds a constant op carrying `value` with result type `ty`, or
    /// `None` when no registered materializer covers the pair.
    pub fn materialize(
        &self,
        ctx: &mut Context,
        value: &EvalValue,
        ty: Type,
    ) -> Option<OperationState> {
        self.materializers.iter().find_map(|m| m(ctx, value, ty))
    }

    /// The number of registered evaluators.
    pub fn len(&self) -> usize {
        self.evaluators.len()
    }

    /// Whether no semantics are registered.
    pub fn is_empty(&self) -> bool {
        self.evaluators.is_empty()
    }
}

/// The bundle-artifact wrapper carrying a registry on a
/// [`DialectBundle`](irdl::DialectBundle): compiled dialects and their
/// executable semantics travel together, the way native verifier hooks do.
pub struct Semantics(pub EvalRegistry);

/// The semantics artifact attached to `bundle`, defaulting to an empty
/// registry (every op uninterpreted) when none was attached.
pub fn bundle_semantics(bundle: &irdl::DialectBundle) -> Arc<Semantics> {
    bundle.artifact_or_insert(|| Semantics(EvalRegistry::new()))
}
