//! Runtime values: bit-canonical, hashable, deterministic.
//!
//! Every value the machine produces is stored in a canonical bit form so
//! that two executions can be compared for *exact* equality: floats are
//! kept as the bits of their `f64` encoding after rounding through their
//! nominal format, NaNs are collapsed to one quiet pattern, and values of
//! types the evaluator has no model for are opaque 64-bit tokens. That
//! canonicalization is what makes the translation-validation oracle's
//! "observable divergence" a byte comparison instead of an epsilon test.

use irdl_ir::types::FloatKind;

/// The canonical quiet-NaN bit pattern every NaN result collapses to.
const CANON_NAN: u64 = 0x7ff8_0000_0000_0000;

/// A runtime value in the register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalValue {
    /// A fixed-width integer, stored sign-extended and wrapped to `width`
    /// bits (two's complement; `index` values use width 64).
    Int {
        /// Sign-extended wrapped value.
        value: i128,
        /// Bit width (1..=128).
        width: u32,
    },
    /// A float, stored as the bits of its `f64` encoding after rounding
    /// through `kind`'s precision.
    Float {
        /// Canonicalized `f64` bit pattern.
        bits: u64,
        /// Nominal format.
        kind: FloatKind,
    },
    /// A complex number (two floats of the same format).
    Complex {
        /// Real part, canonicalized `f64` bits.
        re: u64,
        /// Imaginary part, canonicalized `f64` bits.
        im: u64,
        /// Nominal component format.
        kind: FloatKind,
    },
    /// A value of a type the evaluator has no model for: a deterministic
    /// 64-bit token. Equal tokens mean "the same unknown value".
    Opaque(u64),
}

/// Wraps `value` to `width` bits, two's complement, sign-extended.
pub fn wrap_int(value: i128, width: u32) -> i128 {
    let width = width.clamp(1, 128);
    if width == 128 {
        return value;
    }
    let masked = value & ((1i128 << width) - 1);
    // Sign-extend from bit `width - 1`.
    if masked & (1i128 << (width - 1)) != 0 {
        masked - (1i128 << width)
    } else {
        masked
    }
}

/// Rounds `v` through the precision of `kind` and canonicalizes NaN.
///
/// The 16-bit formats are approximated at `f32` precision: the repo has no
/// half/bfloat softfloat, and the approximation is used consistently by
/// both sides of every differential comparison.
pub fn canon_float_bits(v: f64, kind: FloatKind) -> u64 {
    if v.is_nan() {
        return CANON_NAN;
    }
    match kind {
        FloatKind::F64 => v.to_bits(),
        FloatKind::F32 | FloatKind::F16 | FloatKind::BF16 => (f64::from(v as f32)).to_bits(),
    }
}

impl EvalValue {
    /// A wrapped integer value.
    pub fn int(value: i128, width: u32) -> EvalValue {
        EvalValue::Int { value: wrap_int(value, width), width }
    }

    /// A canonicalized float value.
    pub fn float(v: f64, kind: FloatKind) -> EvalValue {
        EvalValue::Float { bits: canon_float_bits(v, kind), kind }
    }

    /// A canonicalized complex value.
    pub fn complex(re: f64, im: f64, kind: FloatKind) -> EvalValue {
        EvalValue::Complex {
            re: canon_float_bits(re, kind),
            im: canon_float_bits(im, kind),
            kind,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(self) -> Option<i128> {
        match self {
            EvalValue::Int { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The float payload, if this is a float.
    pub fn as_float(self) -> Option<f64> {
        match self {
            EvalValue::Float { bits, .. } => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// The `(re, im)` payload, if this is a complex number.
    pub fn as_complex(self) -> Option<(f64, f64)> {
        match self {
            EvalValue::Complex { re, im, .. } => Some((f64::from_bits(re), f64::from_bits(im))),
            _ => None,
        }
    }

    /// Whether this is an integer equal to zero (used for `i1` branching).
    pub fn is_true(self) -> bool {
        matches!(self, EvalValue::Int { value, .. } if value != 0)
    }

    /// A 64-bit fingerprint mixing the discriminant and payload; feeds the
    /// uninterpreted-function hash.
    pub fn fingerprint(self) -> u64 {
        match self {
            EvalValue::Int { value, width } => {
                mix(mix(0x11, value as u64), mix((value >> 64) as u64, u64::from(width)))
            }
            EvalValue::Float { bits, kind } => mix(mix(0x22, bits), kind.bit_width().into()),
            EvalValue::Complex { re, im, kind } => {
                mix(mix(0x33, re), mix(im, kind.bit_width().into()))
            }
            EvalValue::Opaque(token) => mix(0x44, token),
        }
    }
}

impl std::fmt::Display for EvalValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalValue::Int { value, width } => write!(f, "{value} : i{width}"),
            EvalValue::Float { bits, kind } => {
                write!(f, "{} : {}", f64::from_bits(*bits), kind.keyword())
            }
            EvalValue::Complex { re, im, kind } => write!(
                f,
                "({} + {}i) : complex<{}>",
                f64::from_bits(*re),
                f64::from_bits(*im),
                kind.keyword()
            ),
            EvalValue::Opaque(token) => write!(f, "opaque:{token:#018x}"),
        }
    }
}

/// A splitmix64-style combiner: deterministic, platform-independent, and
/// well-distributed enough for input derivation and fingerprints.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for hashing op names, type spellings, and
/// attribute spellings into the input derivation.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_wrapping_is_twos_complement() {
        assert_eq!(EvalValue::int(255, 8), EvalValue::int(-1, 8));
        assert_eq!(EvalValue::int(128, 8).as_int(), Some(-128));
        assert_eq!(EvalValue::int(i128::from(i32::MAX) + 1, 32).as_int(), Some(i128::from(i32::MIN)));
        // i1 sign-extends its single bit: the "true" pattern reads back -1.
        assert_eq!(EvalValue::int(3, 1).as_int(), Some(-1));
        assert!(EvalValue::int(3, 1).is_true());
        assert_eq!(EvalValue::int(2, 1).as_int(), Some(0));
    }

    #[test]
    fn floats_round_through_their_format() {
        // 0.1 is not exactly representable: f32 rounding must differ from f64.
        let f32v = EvalValue::float(0.1, FloatKind::F32);
        let f64v = EvalValue::float(0.1, FloatKind::F64);
        assert_ne!(f32v.as_float(), f64v.as_float());
        assert_eq!(f32v.as_float(), Some(f64::from(0.1f32)));
    }

    #[test]
    fn nan_is_canonical() {
        let a = EvalValue::float(f64::NAN, FloatKind::F64);
        let b = EvalValue::float(-f64::NAN, FloatKind::F32);
        assert_eq!(a, EvalValue::Float { bits: CANON_NAN, kind: FloatKind::F64 });
        assert_eq!(b, EvalValue::Float { bits: CANON_NAN, kind: FloatKind::F32 });
    }

    #[test]
    fn fingerprints_discriminate() {
        let vals = [
            EvalValue::int(1, 32),
            EvalValue::int(1, 64),
            EvalValue::float(1.0, FloatKind::F32),
            EvalValue::complex(1.0, 0.0, FloatKind::F32),
            EvalValue::Opaque(1),
        ];
        for (i, a) in vals.iter().enumerate() {
            for b in vals.iter().skip(i + 1) {
                assert_ne!(a.fingerprint(), b.fingerprint());
            }
        }
    }
}
