//! Structured traps: every abnormal outcome is data, never a panic.
//!
//! The machine is driven by fuzzers over arbitrary (sometimes invalid)
//! modules, so "the program did something undefined" must be an ordinary
//! return value. A [`Trap`] records what went wrong and where; executions
//! that trap are still comparable — the translation-validation oracle
//! treats "traps with kind K" as an observable outcome that rewrites must
//! preserve.

/// The category of a trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Integer or complex division by zero.
    DivByZero,
    /// The loop/branch fuel budget ran out (the program may diverge).
    FuelExhausted,
    /// Strict mode hit an operation with no registered semantics.
    MissingSemantics,
    /// An operation's runtime shape made its semantics inapplicable
    /// (e.g. a counted loop with a non-positive step).
    MalformedOp,
}

impl TrapKind {
    /// A stable keyword for logs and digests.
    pub fn keyword(self) -> &'static str {
        match self {
            TrapKind::DivByZero => "div-by-zero",
            TrapKind::FuelExhausted => "fuel-exhausted",
            TrapKind::MissingSemantics => "missing-semantics",
            TrapKind::MalformedOp => "malformed-op",
        }
    }
}

/// One trap: the kind, the qualified name of the operation that trapped,
/// and a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// Qualified name (`dialect.op`) of the trapping operation.
    pub op: String,
    /// Human-readable description.
    pub detail: String,
}

impl Trap {
    /// Builds a trap at `op`.
    pub fn new(kind: TrapKind, op: impl Into<String>, detail: impl Into<String>) -> Trap {
        Trap { kind, op: op.into(), detail: detail.into() }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trap [{}] at `{}`: {}", self.kind.keyword(), self.op, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_renders_kind_op_and_detail() {
        let t = Trap::new(TrapKind::DivByZero, "fuzz.divi", "divisor is zero");
        assert_eq!(t.to_string(), "trap [div-by-zero] at `fuzz.divi`: divisor is zero");
    }
}
