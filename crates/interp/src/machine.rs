//! The register machine: straight-line evaluation, structured regions,
//! CFG branching, loop fuel, and deterministic uninterpreted inputs.
//!
//! Execution is a walk over the in-memory IR with a [`Value`]-indexed
//! register file. Ops with registered semantics run their
//! [`OpEvaluator`](crate::OpEvaluator); every other op is treated as a
//! deterministic *uninterpreted function*: its results are derived by
//! hashing the op's name, attributes, and operand values together with the
//! run's input seed. Zero-operand unregistered ops (`fuzz.src` sources)
//! thereby become the module's free inputs — different seeds give
//! different well-typed input assignments, and the derivation depends only
//! on data that semantics-preserving rewrites keep intact, so one input
//! assignment can be replayed before and after a rewrite.
//!
//! Termination is bounded by *fuel charged on control transfers only* —
//! CFG branches and structured-loop iterations — never on straight-line
//! ops. Dead-code elimination therefore cannot move the trap point: a
//! rewrite that erases pure ops leaves the jump count, and hence the
//! fuel-exhaustion behavior, unchanged.

use std::collections::HashMap;

use irdl_ir::types::{FloatKind, TypeData};
use irdl_ir::{BlockRef, Context, OpRef, RegionRef, Type, Value};

use crate::registry::EvalRegistry;
use crate::trap::{Trap, TrapKind};
use crate::value::{hash_str, mix, EvalValue};

/// Options for one execution.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Control-transfer budget: each CFG branch and each structured-loop
    /// iteration costs one unit. Straight-line ops are free (a module
    /// without back edges always runs to completion).
    pub fuel: u64,
    /// Seed for input derivation: results of unregistered zero-operand
    /// ops, unbound block arguments, and opaque tokens all derive from it.
    pub input_seed: u64,
    /// Trap with [`TrapKind::MissingSemantics`] on unregistered ops
    /// instead of applying the uninterpreted-function model.
    pub strict: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { fuel: 4096, input_seed: 0, strict: false }
    }
}

/// The observable outcome of an execution.
///
/// An op is *observed* when it has at least one operand and none of its
/// results are used: such sinks are where values leave the dataflow graph,
/// and they are exactly the ops semantics-preserving rewrites leave in
/// place (folding only touches ops whose results are used; DCE only
/// erases unused zero-operand sources).
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// `(qualified op name, operand values)` for every sink executed, in
    /// execution order.
    pub observed: Vec<(String, Vec<EvalValue>)>,
    /// The trap that aborted execution, if any.
    pub trap: Option<Trap>,
    /// Ops evaluated (reporting only; never part of a comparison).
    pub steps: u64,
}

impl Execution {
    /// A canonical rendering for differential comparison: the observation
    /// stream plus the trap *kind*. Trap details (op, message) are
    /// excluded — they may legitimately mention rewritten neighbors.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, operands) in &self.observed {
            let rendered: Vec<String> = operands.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "observe {name}({})", rendered.join(", "));
        }
        match &self.trap {
            Some(trap) => {
                let _ = writeln!(out, "trap {}", trap.kind.keyword());
            }
            None => {
                let _ = writeln!(out, "return");
            }
        }
        out
    }
}

/// The float format of `ty`, if it is a builtin float type.
pub fn float_kind(ctx: &Context, ty: Type) -> Option<FloatKind> {
    match ctx.type_data(ty) {
        TypeData::Float(kind) => Some(*kind),
        _ => None,
    }
}

/// The bit width of `ty`, if it is a builtin integer or index type
/// (`index` is modeled at 64 bits).
pub fn int_width(ctx: &Context, ty: Type) -> Option<u32> {
    match ctx.type_data(ty) {
        TypeData::Integer { width, .. } => Some(*width),
        TypeData::Index => Some(64),
        _ => None,
    }
}

/// The register machine. Dialect evaluators receive `&mut Machine` and use
/// it to read operands, run nested regions, charge loop fuel, and derive
/// deterministic inputs.
pub struct Machine<'a> {
    ctx: &'a Context,
    registry: &'a EvalRegistry,
    opts: EvalOptions,
    regs: HashMap<Value, EvalValue>,
    fuel: u64,
    steps: u64,
    observed: Vec<(String, Vec<EvalValue>)>,
    uninterpreted_hits: u64,
}

impl<'a> Machine<'a> {
    /// A fresh machine over `ctx` with the given semantics.
    pub fn new(ctx: &'a Context, registry: &'a EvalRegistry, opts: EvalOptions) -> Machine<'a> {
        Machine {
            ctx,
            registry,
            opts,
            regs: HashMap::new(),
            fuel: opts.fuel,
            steps: 0,
            observed: Vec::new(),
            uninterpreted_hits: 0,
        }
    }

    /// The context being executed.
    pub fn ctx(&self) -> &'a Context {
        self.ctx
    }

    /// The value of `v`. A value that was never defined (use before def in
    /// unverified IR) resolves to a deterministic input derived from its
    /// type, so even malformed modules execute reproducibly.
    pub fn get(&mut self, v: Value) -> EvalValue {
        if let Some(val) = self.regs.get(&v) {
            return *val;
        }
        let ty = v.ty(self.ctx);
        let val = self.input_value(ty, 0x0bad_def5);
        self.regs.insert(v, val);
        val
    }

    /// Writes `v` into the register file.
    pub fn set(&mut self, v: Value, val: EvalValue) {
        self.regs.insert(v, val);
    }

    /// The current values of `op`'s operands, in order.
    pub fn operand_values(&mut self, op: OpRef) -> Vec<EvalValue> {
        let operands: Vec<Value> = op.operands(self.ctx).to_vec();
        operands.into_iter().map(|v| self.get(v)).collect()
    }

    /// Charges one unit of control-transfer fuel on behalf of `op`.
    ///
    /// # Errors
    ///
    /// Traps with [`TrapKind::FuelExhausted`] when the budget is spent.
    pub fn charge_fuel(&mut self, op: OpRef) -> Result<(), Trap> {
        if self.fuel == 0 {
            return Err(Trap::new(
                TrapKind::FuelExhausted,
                op.name(self.ctx).display(self.ctx),
                format!("control-transfer budget of {} exhausted", self.opts.fuel),
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    /// A deterministic, well-typed input value for `ty`, salted by `salt`.
    ///
    /// Index values are biased small (including negatives and zero) so
    /// counted loops get interesting trip counts; floats are quarter-step
    /// values exact in every format; `i1` naturally covers both branches.
    pub fn input_value(&mut self, ty: Type, salt: u64) -> EvalValue {
        let fp = hash_str(&ty.display(self.ctx));
        let h = mix(mix(self.opts.input_seed, fp), salt);
        value_for_type(self.ctx, ty, h)
    }

    /// The uninterpreted-function model for `op`: executes its regions (for
    /// their observations), then derives one deterministic value per result
    /// from the op's name, attributes, and operand values.
    ///
    /// # Errors
    ///
    /// Propagates traps from region execution.
    pub fn uninterpreted(&mut self, op: OpRef) -> Result<Vec<EvalValue>, Trap> {
        self.uninterpreted_hits += 1;
        if self.opts.strict {
            return Err(Trap::new(
                TrapKind::MissingSemantics,
                op.name(self.ctx).display(self.ctx),
                "no evaluator registered for this operation",
            ));
        }
        for region in op.regions(self.ctx).to_vec() {
            self.run_region_to_terminator(region, &[])?;
        }
        let h = self.op_hash(op);
        let result_types: Vec<Type> = op.result_types(self.ctx).to_vec();
        Ok(result_types
            .into_iter()
            .enumerate()
            .map(|(i, ty)| value_for_type(self.ctx, ty, mix(h, i as u64 + 1)))
            .collect())
    }

    /// A hash of `op`'s identity under the current input assignment: name,
    /// attributes (by printed form), and operand values. Stable across
    /// print/parse round-trips and across semantics-preserving rewrites of
    /// the surrounding module.
    fn op_hash(&mut self, op: OpRef) -> u64 {
        let mut h = mix(self.opts.input_seed, hash_str(&op.name(self.ctx).display(self.ctx)));
        let attrs: Vec<(irdl_ir::Symbol, irdl_ir::Attribute)> =
            op.attributes(self.ctx).to_vec();
        for (key, attr) in attrs {
            let key_fp = hash_str(self.ctx.symbol_str(key));
            let val_fp = hash_str(&attr.display(self.ctx));
            h = mix(h, mix(key_fp, val_fp));
        }
        for val in self.operand_values(op) {
            h = mix(h, val.fingerprint());
        }
        h
    }

    /// Evaluates one op: dispatches to its registered evaluator or the
    /// uninterpreted model, writes its results, and records the
    /// observation if the op is a sink.
    ///
    /// # Errors
    ///
    /// Propagates evaluator traps.
    pub fn eval_op(&mut self, op: OpRef) -> Result<(), Trap> {
        self.steps += 1;
        // Observe before evaluating: the observation captures the operand
        // values flowing *into* the sink.
        let num_operands = op.num_operands(self.ctx);
        let is_sink = num_operands > 0
            && (0..op.num_results(self.ctx)).all(|i| op.result(self.ctx, i).is_unused(self.ctx));
        if is_sink {
            let name = op.name(self.ctx).display(self.ctx);
            let values = self.operand_values(op);
            self.observed.push((name, values));
        }

        let values = match self.registry.evaluator_for(self.ctx, op) {
            Some(evaluator) => evaluator.eval(self, op)?,
            None => self.uninterpreted(op)?,
        };
        let num_results = op.num_results(self.ctx);
        for i in 0..num_results {
            let result = op.result(self.ctx, i);
            let val = match values.get(i) {
                Some(val) => *val,
                // Evaluator returned fewer values than the op has results
                // (e.g. a yield-count mismatch the verifier permits): pad
                // deterministically from the op's identity hash.
                None => {
                    let ty = op.result_types(self.ctx)[i];
                    let h = self.op_hash(op);
                    value_for_type(self.ctx, ty, mix(h, 0x5eed_0000 + i as u64))
                }
            };
            self.set(result, val);
        }
        Ok(())
    }

    /// Runs `region` until a block falls off its end: binds the entry
    /// block's arguments from `args` (padding with derived inputs),
    /// evaluates every op, follows the first successor of branching
    /// terminators (each branch charges fuel), and returns the final
    /// block's last evaluated op — the region's terminator, whose operand
    /// values the caller can read back from the register file.
    ///
    /// # Errors
    ///
    /// Propagates traps; a diverging CFG traps on fuel.
    pub fn run_region_to_terminator(
        &mut self,
        region: RegionRef,
        args: &[EvalValue],
    ) -> Result<Option<OpRef>, Trap> {
        let Some(entry) = region.entry_block(self.ctx) else { return Ok(None) };
        self.bind_block_args(region, entry, args);
        let mut block = entry;
        loop {
            let ops: Vec<OpRef> = block.ops(self.ctx).to_vec();
            let Some((&last, body)) = ops.split_last() else { return Ok(None) };
            for &op in body {
                self.eval_op(op)?;
            }
            if let Some(&target) = last.successors(self.ctx).first() {
                self.charge_fuel(last)?;
                self.bind_block_args(region, target, &[]);
                block = target;
                continue;
            }
            self.eval_op(last)?;
            return Ok(Some(last));
        }
    }

    /// Binds `block`'s arguments: from `args` where provided, derived
    /// inputs (salted by the block's position in its region) otherwise.
    fn bind_block_args(&mut self, region: RegionRef, block: BlockRef, args: &[EvalValue]) {
        let block_index =
            region.blocks(self.ctx).iter().position(|&b| b == block).unwrap_or(0) as u64;
        let num_args = block.num_args(self.ctx);
        for i in 0..num_args {
            let arg = block.arg(self.ctx, i);
            let val = match args.get(i) {
                Some(val) => *val,
                None => {
                    let ty = arg.ty(self.ctx);
                    self.input_value(ty, mix(0xb10c, mix(block_index, i as u64)))
                }
            };
            self.set(arg, val);
        }
    }

    /// How many times the uninterpreted-function model has been consulted.
    /// Constant folding uses this to reject evaluations that leaned on
    /// seed-dependent derived values: only fully interpreted computations
    /// are safe to replace by compile-time constants.
    pub fn uninterpreted_hits(&self) -> u64 {
        self.uninterpreted_hits
    }

    /// Finishes the run, consuming the machine.
    fn finish(self, trap: Option<Trap>) -> Execution {
        Execution { observed: self.observed, trap, steps: self.steps }
    }
}

/// A deterministic well-typed value for `ty` derived from hash `h`.
fn value_for_type(ctx: &Context, ty: Type, h: u64) -> EvalValue {
    match ctx.type_data(ty) {
        TypeData::Integer { width, .. } => EvalValue::int(h as i128, *width),
        // Small index values (-3..=9): loops over derived bounds get
        // realistic trip counts, including zero-trip and backwards cases.
        TypeData::Index => EvalValue::int((h % 13) as i128 - 3, 64),
        // Quarter-step floats in [-4, +11.75]: exact in every format, so
        // cross-precision arithmetic stays bit-deterministic.
        TypeData::Float(kind) => EvalValue::float((h % 64) as f64 / 4.0 - 4.0, *kind),
        TypeData::Parametric { name, params, .. } if ctx.symbol_str(*name) == "complex" => {
            let kind = params
                .first()
                .and_then(|p| p.as_type(ctx))
                .and_then(|elem| float_kind(ctx, elem))
                .unwrap_or(FloatKind::F64);
            let re = (h % 64) as f64 / 4.0 - 4.0;
            let im = (mix(h, 0x1111) % 64) as f64 / 4.0 - 4.0;
            EvalValue::complex(re, im, kind)
        }
        _ => EvalValue::Opaque(h | 1),
    }
}

/// Executes `root` (typically a module) under `registry` and returns the
/// observable outcome. Never panics: abnormal outcomes are traps.
pub fn run_module(
    ctx: &Context,
    registry: &EvalRegistry,
    root: OpRef,
    opts: EvalOptions,
) -> Execution {
    let mut machine = Machine::new(ctx, registry, opts);
    let trap = machine.eval_op(root).err();
    machine.finish(trap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irdl_ir::OperationState;

    fn sink(ctx: &mut Context, block: BlockRef, operands: Vec<Value>) {
        let name = ctx.op_name("t", "sink");
        let op = ctx.create_op(OperationState::new(name).add_operands(operands));
        ctx.append_op(block, op);
    }

    #[test]
    fn uninterpreted_inputs_are_deterministic_and_typed() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let i32 = ctx.i32_type();
        let src = ctx.op_name("t", "src");
        let a = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, a);
        let av = a.result(&ctx, 0);
        sink(&mut ctx, block, vec![av]);

        let registry = EvalRegistry::new();
        let run1 = run_module(&ctx, &registry, module, EvalOptions::default());
        let run2 = run_module(&ctx, &registry, module, EvalOptions::default());
        assert_eq!(run1.digest(), run2.digest());
        assert!(run1.trap.is_none());
        assert_eq!(run1.observed.len(), 1);
        assert!(matches!(run1.observed[0].1[0], EvalValue::Int { width: 32, .. }));

        let other = run_module(
            &ctx,
            &registry,
            module,
            EvalOptions { input_seed: 7, ..EvalOptions::default() },
        );
        assert_ne!(run1.observed, other.observed, "seed must vary the inputs");
    }

    #[test]
    fn diverging_cfg_traps_on_fuel_not_forever() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let top = ctx.module_block(module);
        let region = ctx.create_region();
        let block = ctx.create_block([]);
        ctx.append_block(region, block);
        let br = ctx.op_name("t", "br");
        let jump = ctx.create_op(OperationState::new(br).add_successors([block]));
        ctx.append_op(block, jump);
        let holder = ctx.op_name("t", "loop");
        let op = ctx.create_op(OperationState::new(holder).add_regions([region]));
        ctx.append_op(top, op);

        let registry = EvalRegistry::new();
        let run = run_module(
            &ctx,
            &registry,
            module,
            EvalOptions { fuel: 16, ..EvalOptions::default() },
        );
        assert!(run.digest().contains("trap fuel-exhausted"));
        let trap = run.trap.expect("self-loop must exhaust fuel");
        assert_eq!(trap.kind, TrapKind::FuelExhausted);
    }

    #[test]
    fn strict_mode_traps_on_missing_semantics() {
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let i32 = ctx.i32_type();
        let src = ctx.op_name("t", "src");
        let a = ctx.create_op(OperationState::new(src).add_result_types([i32]));
        ctx.append_op(block, a);

        let registry = EvalRegistry::new();
        let run = run_module(
            &ctx,
            &registry,
            module,
            EvalOptions { strict: true, ..EvalOptions::default() },
        );
        assert_eq!(run.trap.expect("must trap").kind, TrapKind::MissingSemantics);
    }
}
