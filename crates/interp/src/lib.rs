//! `irdl-interp`: a register-based evaluator for the IRDL SSA IR.
//!
//! The interpreter gives the in-memory IR *executable semantics*: a
//! [`Machine`] walks a module with a [`Value`](irdl_ir::Value)-indexed
//! register file, dispatching each op to an [`OpEvaluator`] registered in
//! an [`EvalRegistry`] — the same name-keyed registration model the
//! verifier uses for native hooks, so compiled
//! [`DialectBundle`](irdl::DialectBundle)s carry semantics as a typed
//! artifact ([`Semantics`]) next to their verifier hooks and pattern
//! catalogs.
//!
//! Three properties make the interpreter usable as a *translation
//! validation* oracle over the rewrite engine:
//!
//! - **Total and structured.** Execution never panics; abnormal outcomes
//!   are [`Trap`]s (division by zero, loop fuel exhausted, missing
//!   semantics in strict mode, malformed ops). Fuel is charged on control
//!   transfers only, so erasing straight-line ops cannot move the trap
//!   point.
//! - **Deterministic uninterpreted inputs.** Ops without registered
//!   semantics behave as uninterpreted functions of their name,
//!   attributes, and operand values, seeded by [`EvalOptions::input_seed`]
//!   — random well-typed inputs that replay identically before and after
//!   a rewrite.
//! - **Canonical observables.** An [`Execution`] records the values
//!   flowing into sink ops plus the trap kind, in a bit-canonical form
//!   ([`EvalValue`]) where divergence is a byte comparison.
//!
//! The registry also carries the constant model (which ops denote
//! constants, how to materialize computed values back as constant ops)
//! that the rewrite crate's constant-folding patterns are built from.

mod machine;
mod registry;
mod trap;
mod value;

pub use machine::{float_kind, int_width, run_module, EvalOptions, Execution, Machine};
pub use registry::{bundle_semantics, ConstMaterializer, EvalRegistry, OpEvaluator, Semantics};
pub use trap::{Trap, TrapKind};
pub use irdl_ir::types::FloatKind;
pub use value::{canon_float_bits, hash_str, mix, wrap_int, EvalValue};
