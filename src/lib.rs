//! Umbrella crate for the IRDL reproduction.
//!
//! This crate re-exports the workspace members so that the `examples/` and
//! `tests/` directories at the repository root can exercise the whole stack
//! through a single dependency:
//!
//! - [`ir`] — the extensible SSA IR substrate (dialects, operations, types,
//!   attributes, regions, verifiers, textual syntax),
//! - [`irdl`] — the IR definition language itself (the paper's contribution),
//! - [`rewrite`] — the pattern rewriting driver,
//! - [`dialects`] — the 28-dialect evaluation corpus,
//! - [`analysis`] — the statistics tooling that regenerates the paper's
//!   figures and tables,
//! - [`fuzz`] — the deterministic fuzzing harness (structured generators,
//!   differential oracles, delta-debugging reducer),
//! - [`interp`] — the register-based IR interpreter (executable semantics,
//!   structured traps, the translation-validation substrate).

pub use irdl;
pub use irdl_analysis as analysis;
pub use irdl_dialects as dialects;
pub use irdl_fuzz_lib as fuzz;
pub use irdl_interp as interp;
pub use irdl_ir as ir;
pub use irdl_rewrite as rewrite;
pub use irdl_tools as tools;
