#![cfg(feature = "proptest")]
// Gated off by default: proptest cannot be fetched in offline builds.
// Restore the proptest dev-dependency and run with `--features proptest`.

//! Property-based tests: printing and re-parsing is the identity for
//! arbitrary types, attributes, and straight-line IR modules.

use proptest::prelude::*;

use irdl_repro::ir::parse::{parse_attr_str, parse_module, parse_type_str};
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::{Context, FloatKind, OperationState, Signedness, Type};

/// A recipe for building an arbitrary type inside a fresh context.
#[derive(Debug, Clone)]
enum TypeRecipe {
    Int(u32, u8),
    Float(u8),
    Index,
    Vector(Vec<u64>, Box<TypeRecipe>),
    Tensor(Vec<i64>, Box<TypeRecipe>),
    Function(Vec<TypeRecipe>, Vec<TypeRecipe>),
    Complex(Box<TypeRecipe>),
}

fn build_type(ctx: &mut Context, recipe: &TypeRecipe) -> Type {
    match recipe {
        TypeRecipe::Int(width, s) => {
            let signedness = match s % 3 {
                0 => Signedness::Signless,
                1 => Signedness::Signed,
                _ => Signedness::Unsigned,
            };
            ctx.int_type_with_signedness(width % 128 + 1, signedness)
        }
        TypeRecipe::Float(k) => {
            let kind = match k % 4 {
                0 => FloatKind::BF16,
                1 => FloatKind::F16,
                2 => FloatKind::F32,
                _ => FloatKind::F64,
            };
            ctx.float_type(kind)
        }
        TypeRecipe::Index => ctx.index_type(),
        TypeRecipe::Vector(dims, elem) => {
            let elem = build_type(ctx, elem);
            let dims: Vec<u64> = dims.iter().map(|d| d % 64 + 1).collect();
            ctx.vector_type(dims, elem)
        }
        TypeRecipe::Tensor(dims, elem) => {
            let elem = build_type(ctx, elem);
            let dims: Vec<i64> = dims.iter().map(|d| if *d < 0 { -1 } else { d % 64 }).collect();
            ctx.tensor_type(dims, elem)
        }
        TypeRecipe::Function(ins, outs) => {
            let ins: Vec<Type> = ins.iter().map(|r| build_type(ctx, r)).collect();
            let outs: Vec<Type> = outs.iter().map(|r| build_type(ctx, r)).collect();
            ctx.function_type(ins, outs)
        }
        TypeRecipe::Complex(elem) => {
            let elem = build_type(ctx, elem);
            let param = ctx.type_attr(elem);
            ctx.parametric_type("gen", "wrapped", [param]).expect("unregistered dialect")
        }
    }
}

fn type_recipe() -> impl Strategy<Value = TypeRecipe> {
    let leaf = prop_oneof![
        (1u32..128, any::<u8>()).prop_map(|(w, s)| TypeRecipe::Int(w, s)),
        any::<u8>().prop_map(TypeRecipe::Float),
        Just(TypeRecipe::Index),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (proptest::collection::vec(1u64..32, 0..3), inner.clone())
                .prop_map(|(d, e)| TypeRecipe::Vector(d, Box::new(e))),
            (proptest::collection::vec(-1i64..32, 0..3), inner.clone())
                .prop_map(|(d, e)| TypeRecipe::Tensor(d, Box::new(e))),
            (
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(i, o)| TypeRecipe::Function(i, o)),
            inner.prop_map(|e| TypeRecipe::Complex(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn type_print_parse_roundtrip(recipe in type_recipe()) {
        let mut ctx = Context::new();
        let ty = build_type(&mut ctx, &recipe);
        let text = ty.display(&ctx);
        let reparsed = parse_type_str(&mut ctx, &text)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(reparsed, ty, "{}", text);
    }

    #[test]
    fn int_attr_roundtrip(value in any::<i64>(), width in 1u32..128) {
        let mut ctx = Context::new();
        let ty = ctx.int_type(width);
        let attr = ctx.int_attr(value as i128, ty);
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        prop_assert_eq!(reparsed, attr, "{}", text);
    }

    #[test]
    fn float_attr_roundtrip(value in any::<f64>()) {
        let mut ctx = Context::new();
        let attr = ctx.float_attr(value, FloatKind::F64);
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        prop_assert_eq!(reparsed, attr, "{}", text);
    }

    #[test]
    fn string_attr_roundtrip(s in "[ -~]*") {
        let mut ctx = Context::new();
        let attr = ctx.string_attr(s.clone());
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        prop_assert_eq!(reparsed, attr, "{}", text);
    }

    #[test]
    fn straight_line_module_roundtrip(
        ops in proptest::collection::vec((0usize..4, 0usize..3), 1..20)
    ) {
        // Build a random straight-line module: each op consumes up to
        // `uses` previously defined values and produces `defs` results.
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let f32 = ctx.f32_type();
        let mut available: Vec<irdl_repro::ir::Value> = Vec::new();
        for (i, (uses, defs)) in ops.iter().enumerate() {
            let operands: Vec<irdl_repro::ir::Value> = (0..*uses)
                .filter_map(|k| available.get((i * 7 + k * 3) % available.len().max(1)).copied())
                .collect();
            let name = ctx.op_name("gen", &format!("op{}", i % 5));
            let op = ctx.create_op(
                OperationState::new(name)
                    .add_operands(operands)
                    .add_result_types(std::iter::repeat_n(f32, *defs)),
            );
            ctx.append_op(block, op);
            available.extend(op.results(&ctx));
        }
        verify_op(&ctx, module).unwrap();
        let text = op_to_string(&ctx, module);
        let mut ctx2 = Context::new();
        let module2 = parse_module(&mut ctx2, &text)
            .unwrap_or_else(|e| panic!("{text}: {}", e.render(&text)));
        verify_op(&ctx2, module2).unwrap();
        prop_assert_eq!(op_to_string(&ctx2, module2), text);
    }
}
