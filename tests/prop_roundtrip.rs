//! Property-based tests: printing and re-parsing is the identity for
//! arbitrary types, attributes, and straight-line IR modules.
//!
//! Randomness comes from the workspace's own seeded [`SplitMix64`] stream
//! (no external property-testing dependency), so the tests run in every
//! offline `cargo test` and every failure is reproducible from the case
//! index printed in the panic message.

use irdl_repro::fuzz::SplitMix64;
use irdl_repro::ir::parse::{parse_attr_str, parse_module, parse_type_str};
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::{Context, FloatKind, OperationState, Signedness, Type};

/// Runs `body` for `cases` independently-seeded cases.
fn for_cases(seed: u64, cases: u64, mut body: impl FnMut(&mut SplitMix64)) {
    let mut base = SplitMix64::new(seed);
    for case in 0..cases {
        let mut rng = base.fork();
        // The case index pins the failing stream: re-running the test
        // reproduces it (the harness is fully deterministic).
        let _ = case;
        body(&mut rng);
    }
}

/// A recipe for building an arbitrary type inside a fresh context.
#[derive(Debug, Clone)]
enum TypeRecipe {
    Int(u32, u8),
    Float(u8),
    Index,
    Vector(Vec<u64>, Box<TypeRecipe>),
    Tensor(Vec<i64>, Box<TypeRecipe>),
    Function(Vec<TypeRecipe>, Vec<TypeRecipe>),
    Complex(Box<TypeRecipe>),
}

fn random_recipe(rng: &mut SplitMix64, depth: usize) -> TypeRecipe {
    let leaf = depth == 0 || rng.chance(1, 3);
    if leaf {
        match rng.below(3) {
            0 => TypeRecipe::Int(rng.range(1, 128) as u32, rng.next_u64() as u8),
            1 => TypeRecipe::Float(rng.next_u64() as u8),
            _ => TypeRecipe::Index,
        }
    } else {
        match rng.below(4) {
            0 => {
                let dims = (0..rng.below(3)).map(|_| rng.range(1, 32) as u64).collect();
                TypeRecipe::Vector(dims, Box::new(random_recipe(rng, depth - 1)))
            }
            1 => {
                let dims = (0..rng.below(3))
                    .map(|_| rng.range(0, 33) as i64 - 1)
                    .collect();
                TypeRecipe::Tensor(dims, Box::new(random_recipe(rng, depth - 1)))
            }
            2 => {
                let ins = (0..rng.below(3)).map(|_| random_recipe(rng, depth - 1)).collect();
                let outs = (0..rng.below(3)).map(|_| random_recipe(rng, depth - 1)).collect();
                TypeRecipe::Function(ins, outs)
            }
            _ => TypeRecipe::Complex(Box::new(random_recipe(rng, depth - 1))),
        }
    }
}

fn build_type(ctx: &mut Context, recipe: &TypeRecipe) -> Type {
    match recipe {
        TypeRecipe::Int(width, s) => {
            let signedness = match s % 3 {
                0 => Signedness::Signless,
                1 => Signedness::Signed,
                _ => Signedness::Unsigned,
            };
            ctx.int_type_with_signedness(width % 128 + 1, signedness)
        }
        TypeRecipe::Float(k) => {
            let kind = match k % 4 {
                0 => FloatKind::BF16,
                1 => FloatKind::F16,
                2 => FloatKind::F32,
                _ => FloatKind::F64,
            };
            ctx.float_type(kind)
        }
        TypeRecipe::Index => ctx.index_type(),
        TypeRecipe::Vector(dims, elem) => {
            let elem = build_type(ctx, elem);
            let dims: Vec<u64> = dims.iter().map(|d| d % 64 + 1).collect();
            ctx.vector_type(dims, elem)
        }
        TypeRecipe::Tensor(dims, elem) => {
            let elem = build_type(ctx, elem);
            let dims: Vec<i64> = dims.iter().map(|d| if *d < 0 { -1 } else { d % 64 }).collect();
            ctx.tensor_type(dims, elem)
        }
        TypeRecipe::Function(ins, outs) => {
            let ins: Vec<Type> = ins.iter().map(|r| build_type(ctx, r)).collect();
            let outs: Vec<Type> = outs.iter().map(|r| build_type(ctx, r)).collect();
            ctx.function_type(ins, outs)
        }
        TypeRecipe::Complex(elem) => {
            let elem = build_type(ctx, elem);
            let param = ctx.type_attr(elem);
            ctx.parametric_type("gen", "wrapped", [param]).expect("unregistered dialect")
        }
    }
}

#[test]
fn type_print_parse_roundtrip() {
    for_cases(0x5eed_0001, 256, |rng| {
        let recipe = random_recipe(rng, 3);
        let mut ctx = Context::new();
        let ty = build_type(&mut ctx, &recipe);
        let text = ty.display(&ctx);
        let reparsed =
            parse_type_str(&mut ctx, &text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(reparsed, ty, "{text}");
    });
}

#[test]
fn int_attr_roundtrip() {
    for_cases(0x5eed_0002, 256, |rng| {
        let value = rng.next_u64() as i64;
        let width = rng.range(1, 128) as u32;
        let mut ctx = Context::new();
        let ty = ctx.int_type(width);
        let attr = ctx.int_attr(value as i128, ty);
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        assert_eq!(reparsed, attr, "{text}");
    });
}

#[test]
fn float_attr_roundtrip() {
    for_cases(0x5eed_0003, 256, |rng| {
        // Bit-pattern draws cover the full f64 space; NaN payloads are not
        // round-trippable through decimal text, so canonicalize them out.
        let value = f64::from_bits(rng.next_u64());
        let value = if value.is_nan() { f64::NAN } else { value };
        let mut ctx = Context::new();
        let attr = ctx.float_attr(value, FloatKind::F64);
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        assert_eq!(reparsed, attr, "{text}");
    });
}

#[test]
fn string_attr_roundtrip() {
    for_cases(0x5eed_0004, 256, |rng| {
        let len = rng.below(24);
        let s: String = (0..len)
            .map(|_| char::from(b' ' + rng.below((b'~' - b' ' + 1) as usize) as u8))
            .collect();
        let mut ctx = Context::new();
        let attr = ctx.string_attr(s.clone());
        let text = attr.display(&ctx);
        let reparsed = parse_attr_str(&mut ctx, &text).unwrap();
        assert_eq!(reparsed, attr, "{text}");
    });
}

#[test]
fn straight_line_module_roundtrip() {
    for_cases(0x5eed_0005, 128, |rng| {
        // Build a random straight-line module: each op consumes up to
        // `uses` previously defined values and produces `defs` results.
        let num_ops = rng.range(1, 20);
        let mut ctx = Context::new();
        let module = ctx.create_module();
        let block = ctx.module_block(module);
        let f32 = ctx.f32_type();
        let mut available: Vec<irdl_repro::ir::Value> = Vec::new();
        for i in 0..num_ops {
            let uses = rng.below(4);
            let defs = rng.below(3);
            let operands: Vec<irdl_repro::ir::Value> = (0..uses)
                .filter_map(|k| {
                    available.get((i * 7 + k * 3) % available.len().max(1)).copied()
                })
                .collect();
            let name = ctx.op_name("gen", &format!("op{}", i % 5));
            let op = ctx.create_op(
                OperationState::new(name)
                    .add_operands(operands)
                    .add_result_types(std::iter::repeat_n(f32, defs)),
            );
            ctx.append_op(block, op);
            available.extend(op.results(&ctx));
        }
        verify_op(&ctx, module).unwrap();
        let text = op_to_string(&ctx, module);
        let mut ctx2 = Context::new();
        let module2 = parse_module(&mut ctx2, &text)
            .unwrap_or_else(|e| panic!("{text}: {}", e.render(&text)));
        verify_op(&ctx2, module2).unwrap();
        assert_eq!(op_to_string(&ctx2, module2), text);
    });
}

/// The generated-module path: every module the fuzzing generator emits
/// against the evaluation corpus round-trips through the printer.
#[test]
fn generated_corpus_module_roundtrip() {
    use irdl_repro::fuzz::{generate_module, FuzzTarget, GenConfig};

    let target = FuzzTarget::corpus().expect("corpus compiles");
    let config = GenConfig::default();
    let mut base = SplitMix64::new(0x5eed_0006);
    for _ in 0..32 {
        let mut rng = base.fork();
        let mut ctx = target.bundle.instantiate();
        let module = generate_module(&mut ctx, &target.catalog, &config, &mut rng);
        let text = op_to_string(&ctx, module);
        let mut ctx2 = target.bundle.instantiate();
        let module2 = parse_module(&mut ctx2, &text)
            .unwrap_or_else(|e| panic!("{text}: {}", e.render(&text)));
        assert_eq!(op_to_string(&ctx2, module2), text);
    }
}
