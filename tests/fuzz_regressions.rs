//! Replays the stored fuzzing regression corpus as plain tests.
//!
//! Every `.mlir` file under `fuzz/corpus-regressions/` is a minimized
//! reproducer written by `irdl-fuzz` (or a hand-written smoke case) with
//! its seed in the header comments. Each case once made an oracle
//! diverge; these tests pin the fixes by asserting that every oracle is
//! green on every stored case, on every `cargo test` — no fuzzing run
//! required.

use std::path::PathBuf;

use irdl_repro::fuzz::{load_case, replay_all, FuzzTarget};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus-regressions")
}

/// The stored cases, sorted by file name for stable test output.
fn cases() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus-regressions exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|e| e == "mlir")).then_some(path)
        })
        .collect();
    paths.sort();
    paths
}

#[test]
fn corpus_is_not_empty() {
    assert!(!cases().is_empty(), "regression corpus should hold at least one case");
}

#[test]
fn every_stored_case_replays_green() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    for path in cases() {
        let case = load_case(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let failures = replay_all(&target.bundle, &case.text, case.seed);
        assert!(
            failures.is_empty(),
            "{} (oracle `{}`, seed {:#x}) diverges again:\n{}",
            path.display(),
            case.oracle,
            case.seed,
            failures
                .iter()
                .map(|f| format!("[{}] {}", f.oracle, f.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Header metadata survives the write → load round trip.
#[test]
fn case_headers_parse() {
    for path in cases() {
        let case = load_case(&path).unwrap();
        assert!(!case.oracle.is_empty(), "{}", path.display());
        assert!(
            case.text.contains("builtin.module") || !case.text.is_empty(),
            "{}",
            path.display()
        );
    }
}
