//! Concurrency smoke test: the full 28-dialect evaluation corpus through
//! the batch pipeline at `--jobs 4`, checked byte-for-byte against the
//! sequential run.
//!
//! This is the integration-level counterpart to the unit tests in
//! `crates/rewrite/src/pipeline.rs`: real corpus dialects (with native
//! hooks and parametric types) instead of a toy spec, and the shared
//! artifacts pinned `Send + Sync` across every crate in the workspace.

use irdl::genir::{instantiate_op, Instantiation};
use irdl::DialectBundle;
use irdl_ir::print::op_to_string;
use irdl_rewrite::pipeline::{run_batch, PipelineOptions};
use irdl_rewrite::PatternSet;

/// One module text per instantiable corpus operation (one instance each —
/// this test is about ordering and identity, not throughput).
fn corpus_module_texts(bundle: &DialectBundle) -> Vec<String> {
    let mut ctx = bundle.instantiate();
    let natives = irdl_dialects::corpus_natives();
    let mut texts = Vec::new();
    for (dialect_name, source) in irdl_dialects::corpus_sources() {
        let file = irdl::parse_irdl(&source).expect("corpus parses");
        for dialect in &file.dialects {
            let compiled = irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                if let Instantiation::Built(_) = instantiate_op(&mut ctx, &op, block) {
                    texts.push(op_to_string(&ctx, module));
                }
                ctx.erase_op(module);
            }
        }
    }
    texts
}

#[test]
fn corpus_at_four_jobs_matches_sequential() {
    let natives = irdl_dialects::corpus_natives();
    let sources = irdl_dialects::corpus_sources();
    let bundle = DialectBundle::compile(&sources, &natives).expect("corpus compiles");
    assert_eq!(bundle.names().len(), 28, "evaluation corpus holds 28 dialects");

    let candidates = corpus_module_texts(&bundle);
    let patterns = PatternSet::new();

    // A few generated ops carry nested regions whose synthesized
    // terminators do not satisfy the recursive verifier (a genir
    // limitation); probe sequentially and keep the clean ones.
    let probe = run_batch(
        &bundle,
        &patterns,
        &candidates,
        &PipelineOptions { jobs: 1, ..Default::default() },
    );
    let inputs: Vec<String> = candidates
        .into_iter()
        .zip(&probe.results)
        .filter_map(|(text, result)| result.is_ok().then_some(text))
        .collect();
    assert!(
        inputs.len() >= 100,
        "corpus should yield a real batch of modules, got {}",
        inputs.len()
    );

    let compiles_before = irdl::dialect_compile_count();
    let sequential = run_batch(
        &bundle,
        &patterns,
        &inputs,
        &PipelineOptions { jobs: 1, ..Default::default() },
    );
    let parallel = run_batch(
        &bundle,
        &patterns,
        &inputs,
        &PipelineOptions { jobs: 4, ..Default::default() },
    );
    assert_eq!(
        irdl::dialect_compile_count(),
        compiles_before,
        "running batches must never recompile a dialect"
    );

    assert_eq!(sequential.results.len(), inputs.len());
    assert_eq!(parallel.results.len(), inputs.len());
    assert_eq!(sequential.workers.len(), 1);
    assert_eq!(parallel.workers.len(), 4);
    assert_eq!(
        parallel.workers.iter().map(|w| w.modules).sum::<usize>(),
        inputs.len(),
        "every module is processed exactly once"
    );
    assert_eq!(parallel.errors(), 0);

    for (i, (s, p)) in sequential.results.iter().zip(&parallel.results).enumerate() {
        let s = s.as_ref().expect("sequential module failed");
        let p = p.as_ref().expect("parallel module failed");
        assert_eq!(s.output, p.output, "parallel output diverged for input {i}");
    }
}

#[test]
fn shared_pipeline_artifacts_are_send_sync() {
    fn _assert_send_sync<T: Send + Sync>() {}
    _assert_send_sync::<DialectBundle>();
    _assert_send_sync::<PatternSet>();
    _assert_send_sync::<irdl::verifier::CompiledOpVerifier>();
    _assert_send_sync::<irdl::verifier::CompiledParamsVerifier>();
    _assert_send_sync::<irdl::program::ProgramOpVerifier>();
    _assert_send_sync::<irdl::program::ProgramParamsVerifier>();
    _assert_send_sync::<irdl::format::FormatSpec>();
    _assert_send_sync::<irdl::NativeRegistry>();
}
