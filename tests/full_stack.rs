//! Cross-crate integration: corpus compilation, evaluation statistics,
//! textual round-trips, and pattern rewriting on one context.

use irdl_repro::analysis::{figures, CorpusStats};
use irdl_repro::dialects::showcase::{
    build_conorm_module, build_conorm_workload, register_showcase, CONORM_PATTERN,
};
use irdl_repro::ir::parse::parse_module;
use irdl_repro::ir::print::{op_to_string, op_to_string_generic};
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::Context;
use irdl_repro::rewrite::{parse_patterns, rewrite_greedily};

#[test]
fn corpus_and_showcase_coexist() {
    let mut ctx = Context::new();
    let names = irdl_repro::dialects::register_corpus(&mut ctx).unwrap();
    register_showcase(&mut ctx).unwrap();
    assert_eq!(names.len(), 28);
    // The corpus `complex` dialect and the showcase `cmath` are distinct.
    let stats = CorpusStats::collect(&ctx, &names);
    assert_eq!(stats.num_ops(), 942);
    let module = build_conorm_module(&mut ctx).unwrap();
    verify_op(&ctx, module).unwrap();
}

#[test]
fn all_figures_render_from_one_corpus() {
    let mut ctx = Context::new();
    let names = irdl_repro::dialects::register_corpus(&mut ctx).unwrap();
    let stats = CorpusStats::collect(&ctx, &names);
    let all = figures::render_all(&stats);
    for needle in [
        "Table 1",
        "Figure 3",
        "Figure 4",
        "Figure 5a",
        "Figure 5b",
        "Figure 6a",
        "Figure 6b",
        "Figure 7a",
        "Figure 7b",
        "Figure 8",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "Figure 12",
    ] {
        assert!(all.contains(needle), "missing {needle}");
    }
}

#[test]
fn conorm_pipeline_end_to_end() {
    // Text in, optimized text out — the full Listing 1 flow.
    let mut ctx = Context::new();
    register_showcase(&mut ctx).unwrap();
    let module = build_conorm_module(&mut ctx).unwrap();
    let before = op_to_string(&ctx, module);
    assert_eq!(before.matches("cmath.norm").count(), 2, "{before}");

    let patterns = parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
    let stats = rewrite_greedily(&mut ctx, module, &patterns);
    assert_eq!(stats.rewrites, 1);

    let after = op_to_string(&ctx, module);
    assert_eq!(after.matches("cmath.norm").count(), 1, "{after}");
    assert!(after.contains("cmath.mul"), "{after}");
    verify_op(&ctx, module).unwrap();

    // The optimized module round-trips through text.
    let mut ctx2 = Context::new();
    register_showcase(&mut ctx2).unwrap();
    let module2 = parse_module(&mut ctx2, &after).unwrap();
    verify_op(&ctx2, module2).unwrap();
    assert_eq!(op_to_string(&ctx2, module2), after);
}

#[test]
fn rewrites_scale_with_workload() {
    let mut ctx = Context::new();
    register_showcase(&mut ctx).unwrap();
    for n in [1usize, 4, 32] {
        let module = build_conorm_workload(&mut ctx, n).unwrap();
        let patterns = parse_patterns(&mut ctx, CONORM_PATTERN).unwrap();
        let stats = rewrite_greedily(&mut ctx, module, &patterns);
        assert_eq!(stats.rewrites, n);
        verify_op(&ctx, module).unwrap();
        ctx.erase_op(module);
    }
}

#[test]
fn generic_and_custom_forms_agree() {
    let mut ctx = Context::new();
    register_showcase(&mut ctx).unwrap();
    let src = r#"
        %p = "test.source"() : () -> !cmath.complex<f64>
        %q = "test.source"() : () -> !cmath.complex<f64>
        %m = cmath.mul %p, %q : f64
    "#;
    let module = parse_module(&mut ctx, src).unwrap();
    verify_op(&ctx, module).unwrap();
    let block = ctx.module_block(module);
    let mul = block.ops(&ctx)[2];
    let generic = op_to_string_generic(&ctx, mul);
    assert_eq!(
        generic,
        "%0 = \"cmath.mul\"(%1, %2) : (!cmath.complex<f64>, !cmath.complex<f64>) \
         -> !cmath.complex<f64>"
    );
    // Parsing the generic form produces an op equivalent to the custom one.
    let src2 = r#"
        %p = "test.source"() : () -> !cmath.complex<f64>
        %q = "test.source"() : () -> !cmath.complex<f64>
        %m = "cmath.mul"(%p, %q) : (!cmath.complex<f64>, !cmath.complex<f64>) -> !cmath.complex<f64>
    "#;
    let mut ctx2 = Context::new();
    register_showcase(&mut ctx2).unwrap();
    let module2 = parse_module(&mut ctx2, src2).unwrap();
    verify_op(&ctx2, module2).unwrap();
    let mul2 = ctx2.module_block(module2).ops(&ctx2)[2];
    assert_eq!(mul2.name(&ctx2).display(&ctx2), "cmath.mul");
    assert_eq!(
        op_to_string(&ctx2, mul2),
        "%0 = cmath.mul %1, %2 : f64",
        "the generic input prints back in custom form"
    );
}

#[test]
fn corpus_sources_are_self_contained() {
    // Every corpus dialect's source can also be compiled alone on a fresh
    // context (plus its cross-dialect dependencies registered first).
    let sources = irdl_repro::dialects::corpus_sources();
    let natives = irdl_repro::dialects::corpus_natives();
    let mut ctx = Context::new();
    for (name, source) in &sources {
        irdl_repro::irdl::register_dialects_with(&mut ctx, source, &natives)
            .unwrap_or_else(|e| panic!("{name}: {}", e.render(source)));
    }
}

#[test]
fn strict_context_rejects_unknown_dialects() {
    let mut ctx = Context::new();
    register_showcase(&mut ctx).unwrap();
    ctx.set_allow_unregistered(false);
    let src = r#"%x = "ghost.make"() : () -> f32"#;
    let module = parse_module(&mut ctx, src).unwrap();
    assert!(verify_op(&ctx, module).is_err());
}
