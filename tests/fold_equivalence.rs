//! Differential fold testing: folding then interpreting must match
//! interpreting the original module, observation for observation.
//!
//! Two halves:
//!
//! - the *equivalence* tests drive the constant-folding catalog over
//!   stored corpus modules, hand-written structured-control-flow modules,
//!   and freshly generated random modules, comparing execution digests
//!   before and after;
//! - the *planted-bug drill* sabotages the constant materializer
//!   (off-by-one), proves the translation-validation oracle catches the
//!   resulting miscompile, ddmin-reduces the reproducer, and pins the
//!   reduced form against the promoted regression case in
//!   `fuzz/corpus-regressions/interp-fold-drill.mlir`.

use std::path::PathBuf;
use std::sync::Arc;

use irdl_repro::dialects::eval::{
    register_builtin_eval, register_complex_eval, register_fuzz_eval, register_scf_eval,
};
use irdl_repro::fuzz::{
    check_translation_validation, generate_module, load_case, reduce, FuzzTarget, GenConfig,
    SplitMix64,
};
use irdl_repro::interp::{
    int_width, run_module, EvalOptions, EvalRegistry, EvalValue, Semantics,
};
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::{Context, OperationState, Type};
use irdl_repro::rewrite::{fold_patterns, rewrite_greedily};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus-regressions")
}

/// Asserts fold-then-interpret ≡ interpret for `text` across input
/// seeds. Returns `false` without checking anything when `text` does not
/// parse (some stored regression cases pin parser rejections).
fn assert_fold_equivalent(target: &FuzzTarget, text: &str, label: &str) -> bool {
    let semantics = irdl_repro::dialects::corpus_semantics();
    for seed in [0u64, 0x5EED, 0xFEED_F00D] {
        let opts = EvalOptions { input_seed: seed, ..EvalOptions::default() };
        let mut ctx = target.bundle.instantiate();
        let Ok(module) = irdl_repro::ir::parse::parse_module(&mut ctx, text) else {
            return false;
        };
        let before = run_module(&ctx, &semantics, module, opts);
        let patterns = fold_patterns(Arc::new(semantics.clone()));
        rewrite_greedily(&mut ctx, module, &patterns);
        let after = run_module(&ctx, &semantics, module, opts);
        assert_eq!(
            before.digest(),
            after.digest(),
            "{label} (seed {seed:#x}) diverges after folding:\n{}",
            op_to_string(&ctx, module)
        );
    }
    true
}

#[test]
fn stored_corpus_cases_fold_equivalently() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let mut replayed = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "mlir") {
            continue;
        }
        let case = load_case(&path).expect("case loads");
        if assert_fold_equivalent(&target, &case.text, &path.display().to_string()) {
            replayed += 1;
        }
    }
    assert!(replayed >= 3, "expected the stored corpus, found {replayed} parsed case(s)");
}

#[test]
fn structured_control_flow_folds_equivalently() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    // Constant arithmetic feeding a counted loop: the bounds fold, the
    // loop must still run the same number of iterations.
    let text = r#""builtin.module"() ({
  %lo = "fuzz.const"() {value = 0 : index} : () -> index
  %hi = "fuzz.const"() {value = 4 : index} : () -> index
  %st = "fuzz.const"() {value = 1 : index} : () -> index
  %init = "fuzz.const"() {value = 3 : i32} : () -> i32
  %inc = "fuzz.const"() {value = 2 : i32} : () -> i32
  %sum = "scf.for_op"(%lo, %hi, %st, %init) ({
  ^entry(%iv: index, %acc: i32):
    %next = "fuzz.addi"(%acc, %inc) : (i32, i32) -> i32
    "scf.yield"(%next) : (i32) -> ()
  }) : (index, index, index, i32) -> i32
  "fuzz.sink"(%sum) : (i32) -> ()
}) : () -> ()"#;
    assert_fold_equivalent(&target, text, "scf.for over folded bounds");

    // A trapping division must not fold away: digest equality here means
    // the div-by-zero trap survives at the same observation point.
    let trap = r#""builtin.module"() ({
  %a = "fuzz.const"() {value = 5 : i32} : () -> i32
  %b = "fuzz.const"() {value = -5 : i32} : () -> i32
  %z = "fuzz.addi"(%a, %b) : (i32, i32) -> i32
  %q = "fuzz.divi"(%a, %z) : (i32, i32) -> i32
  "fuzz.sink"(%q) : (i32) -> ()
}) : () -> ()"#;
    assert_fold_equivalent(&target, trap, "division by folded zero");
}

#[test]
fn generated_modules_fold_equivalently() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    let config = GenConfig::default();
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0xF01D_0000 + seed);
        let mut ctx = target.bundle.instantiate();
        let module = generate_module(&mut ctx, &target.catalog, &config, &mut rng);
        let text = op_to_string(&ctx, module);
        drop(ctx);
        assert_fold_equivalent(&target, &text, &format!("generated module #{seed}"));
    }
}

/// The corpus semantics with one planted bug: an off-by-one constant
/// materializer registered ahead of the real one, so every folded integer
/// comes back as `value + 1`. The evaluators stay correct — only the
/// fold's output is miscompiled, exactly the class of bug translation
/// validation exists to catch.
fn sabotaged_semantics() -> EvalRegistry {
    let mut reg = EvalRegistry::new();
    reg.register_materializer(Arc::new(
        |ctx: &mut Context, value: &EvalValue, ty: Type| {
            let EvalValue::Int { value, .. } = *value else { return None };
            int_width(ctx, ty)?;
            let attr = ctx.int_attr(value.wrapping_add(1), ty);
            let name = ctx.op_name("fuzz", "const");
            let key = ctx.symbol("value");
            Some(OperationState::new(name).add_result_types([ty]).add_attribute(key, attr))
        },
    ));
    register_builtin_eval(&mut reg);
    register_scf_eval(&mut reg);
    register_complex_eval(&mut reg);
    register_fuzz_eval(&mut reg);
    reg
}

#[test]
fn planted_fold_bug_is_caught_and_reduced_to_the_stored_case() {
    let target = FuzzTarget::corpus().expect("corpus compiles");
    // Replace the bundle's semantics artifact before the TV catalog is
    // first built, so the fold materializes through the planted bug.
    target.bundle.attach_artifact(Arc::new(Semantics(sabotaged_semantics())));

    // The unreduced reproducer: the miscompiled constant chain plus
    // unrelated live ops for the reducer to strip.
    let text = r#""builtin.module"() ({
  %d0 = "fuzz.src"() {entropy = 9 : i64} : () -> i64
  %d1 = "fuzz.use"(%d0) : (i64) -> i1
  "fuzz.sink"(%d1) : (i1) -> ()
  %a = "fuzz.const"() {value = 6 : i32} : () -> i32
  %b = "fuzz.const"() {value = 7 : i32} : () -> i32
  %m = "fuzz.muli"(%a, %b) : (i32, i32) -> i32
  "fuzz.sink"(%m) : (i32) -> ()
}) : () -> ()"#;
    let seed = 0xD11A_u64;

    // Drill step 1: the oracle must catch the miscompile.
    let failure = check_translation_validation(&target.bundle, text, seed)
        .expect_err("planted fold bug must diverge");
    assert_eq!(failure.oracle, "translation-validation");
    assert!(
        failure.detail.contains("observable behavior diverges"),
        "unexpected detail: {}",
        failure.detail
    );

    // Drill step 2: ddmin must strip the decoys while the divergence
    // keeps reproducing.
    let reduced = reduce(&target.bundle, text, &mut |candidate| {
        check_translation_validation(&target.bundle, candidate, seed).is_err()
    });
    assert!(
        check_translation_validation(&target.bundle, &reduced, seed).is_err(),
        "reduction must preserve the failure"
    );
    assert!(!reduced.contains("fuzz.src"), "decoy ops must be stripped:\n{reduced}");
    assert!(reduced.contains("fuzz.muli"), "the folded op must survive:\n{reduced}");

    // Drill step 3: the reduced form is exactly the promoted regression
    // case (minus its metadata header), which `tests/fuzz_regressions.rs`
    // replays green against the real, unsabotaged semantics.
    let stored = load_case(&corpus_dir().join("interp-fold-drill.mlir"))
        .expect("promoted drill case exists");
    assert_eq!(stored.oracle, "translation-validation");
    assert_eq!(stored.seed, seed);
    let stored_body: String = stored
        .text
        .lines()
        .filter(|line| !line.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        stored_body.trim(),
        reduced.trim(),
        "the stored case must pin the reduced reproducer"
    );
}
