"builtin.module"() ({
  %0 = "test.const"() {value = 41 : i64, name = "w"} : () -> i32
  "test.use"(%0, %0) : (i32, i32) -> ()
}) : () -> ()
