//! Corpus-wide bytecode round-trip: for every instantiable operation of
//! the 28-dialect corpus (plus the combined big module), encoding the
//! generated module and decoding the bytes into a second corpus-registered
//! context must reproduce the exact printed text — both pretty and generic
//! forms — that the original module prints.
//!
//! This is the acceptance property behind fuzz oracle 7: text and bytecode
//! are two surfaces of one module, so `print ∘ decode ∘ encode` must equal
//! `print`, byte for byte.

use irdl_repro::ir::bytecode::{decode_module, encode_module, is_module_bytecode};
use irdl_repro::ir::print::{op_to_string, op_to_string_generic};
use irdl_repro::ir::Context;
use irdl_repro::irdl::genir::{instantiate_op, Instantiation};

#[test]
fn every_corpus_module_round_trips_through_bytecode() {
    let mut ctx = Context::new();
    let natives = irdl_repro::dialects::corpus_natives();
    // Decoding context: the full corpus registered once, as a reader that
    // received the bytes would have it.
    let mut ctx2 = Context::new();
    irdl_repro::dialects::register_corpus(&mut ctx2).unwrap();

    let big_module = ctx.create_module();
    let big_block = ctx.module_block(big_module);

    let mut checked = 0usize;
    let mut text_total = 0usize;
    let mut bytecode_total = 0usize;
    let mut check = |ctx: &Context, ctx2: &mut Context, module| {
        let text = op_to_string(ctx, module);
        let generic = op_to_string_generic(ctx, module);
        let bytes = encode_module(ctx, module).unwrap_or_else(|e| {
            panic!("module does not encode: {e}\n{text}");
        });
        assert!(is_module_bytecode(&bytes));
        let decoded = decode_module(ctx2, &bytes).unwrap_or_else(|e| {
            panic!("module does not decode: {e}\n{text}");
        });
        assert_eq!(op_to_string(ctx2, decoded), text, "pretty print diverged");
        assert_eq!(op_to_string_generic(ctx2, decoded), generic, "generic print diverged");
        ctx2.erase_op(decoded);
        checked += 1;
        text_total += text.len();
        bytecode_total += bytes.len();
    };

    for (dialect_name, source) in irdl_repro::dialects::corpus_sources() {
        let file = irdl_repro::irdl::parse_irdl(&source).unwrap();
        for dialect in &file.dialects {
            let compiled =
                irdl_repro::irdl::compile_dialect_collecting(&mut ctx, dialect, &natives)
                    .unwrap_or_else(|e| panic!("{dialect_name} compiles: {e}"));
            for op in compiled {
                let module = ctx.create_module();
                let block = ctx.module_block(module);
                match instantiate_op(&mut ctx, &op, block) {
                    Instantiation::Built(_) => {
                        check(&ctx, &mut ctx2, module);
                        ctx.erase_op(module);
                        let again = instantiate_op(&mut ctx, &op, big_block);
                        assert!(matches!(again, Instantiation::Built(_)));
                    }
                    // CFG terminators need successor context, as in the
                    // corpus generation test.
                    Instantiation::Skipped(_) => ctx.erase_op(module),
                }
            }
        }
    }
    check(&ctx, &mut ctx2, big_module);

    assert!(checked > 900, "corpus shrank unexpectedly: {checked} modules");
    // The whole point of the binary format: the corpus encodes smaller
    // than it prints.
    assert!(
        bytecode_total < text_total,
        "bytecode ({bytecode_total} B) is not smaller than text ({text_total} B)"
    );
}
