//! Corruption robustness: malformed bytecode must always produce a
//! diagnostic, never a panic, an out-of-bounds read, or a runaway
//! allocation.
//!
//! Two layers of coverage:
//! - pinned hand-corrupted fixtures under `tests/fixtures/bytecode/`, so
//!   the exact bytes that once exercised each reject path stay in the
//!   repository and keep failing the same way, and
//! - programmatic sweeps (every truncation length, single-byte
//!   overwrites at every offset) over a known-good file, so new decoder
//!   code is immediately exposed to the whole corruption surface.

use irdl_repro::ir::bytecode::decode_module;
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::Context;
use irdl_repro::irdl::DialectBundle;

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/fixtures/bytecode/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// The valid control fixture decodes and prints exactly the pinned text.
#[test]
fn valid_fixture_decodes_to_pinned_text() {
    let bytes = fixture("valid.irbc");
    let expected = String::from_utf8(fixture("valid.mlir")).unwrap();
    let mut ctx = Context::new();
    let module = decode_module(&mut ctx, &bytes).expect("valid fixture decodes");
    assert_eq!(format!("{}\n", op_to_string(&ctx, module)), expected);
}

#[test]
fn corrupted_fixtures_fail_with_diagnostics() {
    // (fixture, required diagnostic fragment)
    let cases = [
        ("bad_magic.irbc", "bad magic"),
        ("bad_version.irbc", "unsupported version"),
        ("truncated.irbc", "truncated"),
        ("oob_index.irbc", "out of range"),
    ];
    for (name, fragment) in cases {
        let bytes = fixture(name);
        let mut ctx = Context::new();
        let err = decode_module(&mut ctx, &bytes)
            .expect_err(&format!("{name} must not decode"))
            .to_string();
        assert!(
            err.contains(fragment),
            "{name}: diagnostic `{err}` does not mention `{fragment}`"
        );
    }
}

/// Every strict prefix of a valid file is rejected with a diagnostic.
#[test]
fn every_truncation_is_rejected() {
    let bytes = fixture("valid.irbc");
    let mut ctx = Context::new();
    for len in 0..bytes.len() {
        let err = decode_module(&mut ctx, &bytes[..len]);
        assert!(err.is_err(), "prefix of {len} bytes unexpectedly decoded");
    }
}

/// Overwriting any single byte with adversarial values never panics: the
/// decoder either rejects the bytes with a diagnostic or produces some
/// well-formed module (flips inside literal payloads are semantically
/// visible but structurally harmless).
#[test]
fn single_byte_overwrites_never_panic() {
    let bytes = fixture("valid.irbc");
    let mut ctx = Context::new();
    for pos in 0..bytes.len() {
        for value in [0x00, 0x7F, 0xFF, bytes[pos] ^ 0x01] {
            let mut corrupt = bytes.clone();
            corrupt[pos] = value;
            if let Ok(module) = decode_module(&mut ctx, &corrupt) {
                // A benign flip: the module must still print.
                let _ = op_to_string(&ctx, module);
                ctx.erase_op(module);
            }
        }
    }
}

/// Module and artifact magics are not interchangeable, and artifact
/// corruption is diagnosed, not fatal.
#[test]
fn artifact_corruption_is_diagnosed() {
    let natives = irdl_repro::dialects::corpus_natives();
    let sources = irdl_repro::dialects::corpus_sources();
    let bundle = DialectBundle::compile(&sources, &natives).expect("corpus compiles");
    let artifact = bundle.save().expect("corpus saves");

    // A bundle artifact is not a module.
    let mut ctx = Context::new();
    let err = decode_module(&mut ctx, &artifact).expect_err("IRDB bytes are not IRBC");
    assert!(err.to_string().contains("magic"), "unexpected diagnostic: {err}");

    // Truncated artifacts are rejected at every length.
    for len in (0..artifact.len()).step_by(7) {
        assert!(
            DialectBundle::load(&artifact[..len], &natives).is_err(),
            "artifact prefix of {len} bytes unexpectedly loaded"
        );
    }
}
