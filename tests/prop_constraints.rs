//! Property-based tests on the constraint algebra and variadic segment
//! resolution, driven by the workspace's own seeded PRNG so they run in
//! every offline `cargo test`.

use irdl_repro::fuzz::SplitMix64;
use irdl_repro::ir::Context;
use irdl_repro::irdl::ast::{IntKind, Variadicity};
use irdl_repro::irdl::constraint::{eval, BindingEnv, CVal, Constraint};
use irdl_repro::irdl::variadic::resolve_segments;

/// Builds a small pool of distinct values to evaluate constraints against.
fn value_pool(ctx: &mut Context) -> Vec<CVal> {
    let f32 = ctx.f32_type();
    let f64 = ctx.f64_type();
    let i32 = ctx.i32_type();
    let int = ctx.i32_attr(7);
    let zero = ctx.i32_attr(0);
    let s = ctx.string_attr("s");
    let arr = ctx.array_attr([int, zero]);
    vec![
        CVal::Type(f32),
        CVal::Type(f64),
        CVal::Type(i32),
        CVal::Attr(int),
        CVal::Attr(zero),
        CVal::Attr(s),
        CVal::Attr(arr),
    ]
}

/// A random variable-free constraint over the pool's value space.
fn random_constraint(ctx: &mut Context, rng: &mut SplitMix64, depth: usize) -> Constraint {
    let kind = IntKind { width: 32, unsigned: false };
    if depth == 0 || rng.chance(1, 2) {
        match rng.below(9) {
            0 => Constraint::Any,
            1 => Constraint::AnyType,
            2 => Constraint::AnyAttr,
            3 => Constraint::ExactType(ctx.f32_type()),
            4 => Constraint::ExactType(ctx.i32_type()),
            5 => Constraint::Int(kind),
            6 => Constraint::IntLiteral { value: 0, kind },
            7 => Constraint::StringAny,
            _ => Constraint::ArrayAny,
        }
    } else {
        match rng.below(3) {
            0 => {
                let n = rng.range(1, 3);
                Constraint::AnyOf((0..n).map(|_| random_constraint(ctx, rng, depth - 1)).collect())
            }
            1 => {
                let n = rng.range(1, 3);
                Constraint::And((0..n).map(|_| random_constraint(ctx, rng, depth - 1)).collect())
            }
            _ => Constraint::Not(Box::new(random_constraint(ctx, rng, depth - 1))),
        }
    }
}

fn check(ctx: &Context, c: &Constraint, v: CVal) -> bool {
    let mut env = BindingEnv::new(0);
    eval(ctx, c, v, &mut env, &[]).is_ok()
}

/// De Morgan-ish laws of the combinators on variable-free constraints.
#[test]
fn combinator_semantics() {
    let mut base = SplitMix64::new(0xc0_0001);
    for _ in 0..512 {
        let mut rng = base.fork();
        let mut ctx = Context::new();
        let pool = value_pool(&mut ctx);
        let v = pool[rng.below(pool.len())];
        let c = random_constraint(&mut ctx, &mut rng, 3);

        // Not inverts.
        let not_c = Constraint::Not(Box::new(c.clone()));
        assert_eq!(check(&ctx, &not_c, v), !check(&ctx, &c, v));
        // Double negation is the identity.
        let not_not_c = Constraint::Not(Box::new(not_c.clone()));
        assert_eq!(check(&ctx, &not_not_c, v), check(&ctx, &c, v));
        // AnyOf of one and And of one are the constraint itself.
        let one_of = Constraint::AnyOf(vec![c.clone()]);
        let all_of = Constraint::And(vec![c.clone()]);
        assert_eq!(check(&ctx, &one_of, v), check(&ctx, &c, v));
        assert_eq!(check(&ctx, &all_of, v), check(&ctx, &c, v));
        // c AnyOf Not(c) is a tautology; c And Not(c) is unsatisfiable.
        let tauto = Constraint::AnyOf(vec![c.clone(), not_c.clone()]);
        let contra = Constraint::And(vec![c.clone(), not_c]);
        assert!(check(&ctx, &tauto, v));
        assert!(!check(&ctx, &contra, v));
    }
}

/// Segment resolution: sizes always sum to the total and respect each
/// definition's variadicity.
#[test]
fn segments_partition_total() {
    let mut base = SplitMix64::new(0xc0_0002);
    for _ in 0..512 {
        let mut rng = base.fork();
        let defs: Vec<Variadicity> = (0..rng.range(1, 5))
            .map(|_| match rng.below(3) {
                0 => Variadicity::Single,
                1 => Variadicity::Variadic,
                _ => Variadicity::Optional,
            })
            .collect();
        let total = rng.below(12);
        match resolve_segments(total, &defs, None) {
            Ok(sizes) => {
                assert_eq!(sizes.len(), defs.len());
                assert_eq!(sizes.iter().sum::<usize>(), total);
                for (size, def) in sizes.iter().zip(&defs) {
                    match def {
                        Variadicity::Single => assert_eq!(*size, 1),
                        Variadicity::Optional => assert!(*size <= 1),
                        Variadicity::Variadic => {}
                    }
                }
            }
            Err(_) => {
                // Failure is legitimate only when the counts cannot work:
                // fewer values than single defs, more values than the defs
                // can absorb, or an ambiguous multi-variadic layout.
                let singles = defs.iter().filter(|d| matches!(d, Variadicity::Single)).count();
                let optionals =
                    defs.iter().filter(|d| matches!(d, Variadicity::Optional)).count();
                let variadics =
                    defs.iter().filter(|d| matches!(d, Variadicity::Variadic)).count();
                let impossible_low = total < singles;
                let impossible_high = variadics == 0 && total > singles + optionals;
                let ambiguous = variadics + optionals > 1;
                assert!(
                    impossible_low || impossible_high || ambiguous,
                    "rejected a satisfiable layout: {defs:?} with {total}"
                );
            }
        }
    }
}

/// Explicit segment-size attributes are accepted exactly when they
/// partition the total and respect variadicities.
#[test]
fn explicit_segments_checked() {
    let mut base = SplitMix64::new(0xc0_0003);
    for _ in 0..512 {
        let mut rng = base.fork();
        let sizes: Vec<i64> = (0..rng.range(1, 4)).map(|_| rng.below(4) as i64).collect();
        let defs: Vec<Variadicity> = vec![Variadicity::Variadic; sizes.len()];
        let total: i64 = sizes.iter().sum();
        let result = resolve_segments(total as usize, &defs, Some(&sizes));
        assert!(result.is_ok(), "{result:?}");
        let off_by_one = resolve_segments(total as usize + 1, &defs, Some(&sizes));
        assert!(off_by_one.is_err());
    }
}

/// Constraint sampling is sound: every witness `genir::sample` produces
/// for a random constraint satisfies that constraint under `eval`.
#[test]
fn sample_produces_satisfying_witnesses() {
    use irdl_repro::irdl::genir::sample;

    let mut base = SplitMix64::new(0xc0_0004);
    let mut sampled = 0u32;
    for _ in 0..512 {
        let mut rng = base.fork();
        let mut ctx = Context::new();
        let c = random_constraint(&mut ctx, &mut rng, 3);
        let mut env = BindingEnv::new(0);
        if let Some(v) = sample(&mut ctx, &c, &mut env, &[]) {
            sampled += 1;
            assert!(check(&ctx, &c, v), "sample violates its constraint: {c:?}");
        }
    }
    // The sampler must succeed often enough to be a useful generator.
    assert!(sampled > 256, "sampler gave up too often: {sampled}/512");
}
