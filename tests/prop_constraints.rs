#![cfg(feature = "proptest")]
// Gated off by default: proptest cannot be fetched in offline builds.
// Restore the proptest dev-dependency and run with `--features proptest`.

//! Property-based tests on the constraint algebra and variadic segment
//! resolution.

use proptest::prelude::*;
use proptest::strategy::ValueTree;

use irdl_repro::irdl::ast::{IntKind, Variadicity};
use irdl_repro::irdl::constraint::{eval, BindingEnv, CVal, Constraint};
use irdl_repro::irdl::variadic::resolve_segments;
use irdl_repro::ir::Context;

/// Builds a small pool of distinct values to evaluate constraints against.
fn value_pool(ctx: &mut Context) -> Vec<CVal> {
    let f32 = ctx.f32_type();
    let f64 = ctx.f64_type();
    let i32 = ctx.i32_type();
    let int = ctx.i32_attr(7);
    let zero = ctx.i32_attr(0);
    let s = ctx.string_attr("s");
    let arr = ctx.array_attr([int, zero]);
    vec![
        CVal::Type(f32),
        CVal::Type(f64),
        CVal::Type(i32),
        CVal::Attr(int),
        CVal::Attr(zero),
        CVal::Attr(s),
        CVal::Attr(arr),
    ]
}

/// A variable-free constraint over the pool.
fn constraint_strategy(ctx: &mut Context) -> impl Strategy<Value = Constraint> {
    let f32 = ctx.f32_type();
    let i32 = ctx.i32_type();
    let kind = IntKind { width: 32, unsigned: false };
    let leaf = prop_oneof![
        Just(Constraint::Any),
        Just(Constraint::AnyType),
        Just(Constraint::AnyAttr),
        Just(Constraint::ExactType(f32)),
        Just(Constraint::ExactType(i32)),
        Just(Constraint::Int(kind)),
        Just(Constraint::IntLiteral { value: 0, kind }),
        Just(Constraint::StringAny),
        Just(Constraint::ArrayAny),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Constraint::AnyOf),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Constraint::And),
            inner.prop_map(|c| Constraint::Not(Box::new(c))),
        ]
    })
}

fn check(ctx: &Context, c: &Constraint, v: CVal) -> bool {
    let mut env = BindingEnv::new(0);
    eval(ctx, c, v, &mut env, &[]).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// De Morgan-ish laws of the combinators on variable-free constraints.
    #[test]
    fn combinator_semantics(seed in any::<prop::sample::Index>(), idx in 0usize..7) {
        let mut ctx = Context::new();
        let pool = value_pool(&mut ctx);
        let v = pool[idx % pool.len()];
        let strat = constraint_strategy(&mut ctx);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let c = strat.new_tree(&mut runner).unwrap().current();
        let _ = seed;

        // Not inverts.
        let not_c = Constraint::Not(Box::new(c.clone()));
        prop_assert_eq!(check(&ctx, &not_c, v), !check(&ctx, &c, v));
        // Double negation is the identity.
        let not_not_c = Constraint::Not(Box::new(not_c.clone()));
        prop_assert_eq!(check(&ctx, &not_not_c, v), check(&ctx, &c, v));
        // AnyOf of one and And of one are the constraint itself.
        let one_of = Constraint::AnyOf(vec![c.clone()]);
        let all_of = Constraint::And(vec![c.clone()]);
        prop_assert_eq!(check(&ctx, &one_of, v), check(&ctx, &c, v));
        prop_assert_eq!(check(&ctx, &all_of, v), check(&ctx, &c, v));
        // c AnyOf Not(c) is a tautology; c And Not(c) is unsatisfiable.
        let tauto = Constraint::AnyOf(vec![c.clone(), not_c.clone()]);
        let contra = Constraint::And(vec![c.clone(), not_c]);
        prop_assert!(check(&ctx, &tauto, v));
        prop_assert!(!check(&ctx, &contra, v));
    }

    /// Segment resolution: sizes always sum to the total and respect each
    /// definition's variadicity.
    #[test]
    fn segments_partition_total(
        defs in proptest::collection::vec(0u8..3, 1..6),
        total in 0usize..12,
    ) {
        let defs: Vec<Variadicity> = defs
            .iter()
            .map(|d| match d {
                0 => Variadicity::Single,
                1 => Variadicity::Variadic,
                _ => Variadicity::Optional,
            })
            .collect();
        match resolve_segments(total, &defs, None) {
            Ok(sizes) => {
                prop_assert_eq!(sizes.len(), defs.len());
                prop_assert_eq!(sizes.iter().sum::<usize>(), total);
                for (size, def) in sizes.iter().zip(&defs) {
                    match def {
                        Variadicity::Single => prop_assert_eq!(*size, 1),
                        Variadicity::Optional => prop_assert!(*size <= 1),
                        Variadicity::Variadic => {}
                    }
                }
            }
            Err(_) => {
                // Failure is legitimate only when the counts cannot work:
                // fewer values than single defs, more values than the defs
                // can absorb, or an ambiguous multi-variadic layout.
                let singles = defs.iter().filter(|d| matches!(d, Variadicity::Single)).count();
                let optionals =
                    defs.iter().filter(|d| matches!(d, Variadicity::Optional)).count();
                let variadics =
                    defs.iter().filter(|d| matches!(d, Variadicity::Variadic)).count();
                let impossible_low = total < singles;
                let impossible_high = variadics == 0 && total > singles + optionals;
                let ambiguous = variadics + optionals > 1;
                prop_assert!(
                    impossible_low || impossible_high || ambiguous,
                    "rejected a satisfiable layout: {:?} with {}",
                    defs,
                    total
                );
            }
        }
    }

    /// Explicit segment-size attributes are accepted exactly when they
    /// partition the total and respect variadicities.
    #[test]
    fn explicit_segments_checked(
        sizes in proptest::collection::vec(0i64..4, 1..5),
    ) {
        let defs: Vec<Variadicity> = vec![Variadicity::Variadic; sizes.len()];
        let total: i64 = sizes.iter().sum();
        let result = resolve_segments(total as usize, &defs, Some(&sizes));
        prop_assert!(result.is_ok(), "{:?}", result);
        let off_by_one = resolve_segments(total as usize + 1, &defs, Some(&sizes));
        prop_assert!(off_by_one.is_err());
    }
}
