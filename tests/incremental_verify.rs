//! Differential testing of the incremental verifier against the full
//! module verifier.
//!
//! The contract under test: starting from valid IR, after any journaled
//! mutation the verdict of [`IncrementalVerifier::verify_changes`] (which
//! re-checks only the dirty set named by the [`ChangeJournal`]) must agree
//! with a from-scratch [`ModuleVerifier`] walk of the whole module — both
//! on mutations that preserve validity and on mutations that break it.
//!
//! Random mutation sequences are driven by a deterministic LCG, so every
//! failure is reproducible from its seed.

use irdl_repro::dialects::showcase::{build_conorm_module, register_showcase};
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::{
    ChangeJournal, Context, IncrementalVerifier, ModuleVerifier, OpRef, OperationState,
};
use irdl_repro::rewrite::{
    rewrite_greedily_with, CheckLevel, PatternSet, RewritePattern, Rewriter,
};

// ---------------------------------------------------------------------------
// Deterministic randomness
// ---------------------------------------------------------------------------

/// A 64-bit LCG (Knuth's MMIX constants); deterministic across platforms.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// A fresh showcase context holding a straight-line `cmath.mul` chain.
fn chain_workload(n: usize) -> (Context, OpRef) {
    let mut ctx = Context::new();
    register_showcase(&mut ctx).expect("showcase registers");
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let complex = ctx
        .parametric_type("cmath", "complex", [f32a])
        .expect("cmath registered");
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.op_name("test", "source");
    let first = ctx.create_op(OperationState::new(src).add_result_types([complex]));
    ctx.append_op(block, first);
    let mut value = first.result(&ctx, 0);
    let mul = ctx.op_name("cmath", "mul");
    for _ in 0..n {
        let op = ctx.create_op(
            OperationState::new(mul)
                .add_operands([value, value])
                .add_result_types([complex]),
        );
        ctx.append_op(block, op);
        value = op.result(&ctx, 0);
    }
    (ctx, module)
}

/// The paper's conorm showcase module (nested region, block arguments).
fn conorm_workload() -> (Context, OpRef) {
    let mut ctx = Context::new();
    register_showcase(&mut ctx).expect("showcase registers");
    let module = build_conorm_module(&mut ctx).expect("conorm builds");
    (ctx, module)
}

// ---------------------------------------------------------------------------
// Validity-preserving random mutations
// ---------------------------------------------------------------------------

/// Applies one random journaled mutation at a random top-level op; all
/// variants keep valid IR valid. Returns `false` if the chosen variant was
/// inapplicable at the chosen anchor (journal untouched or trivially so).
fn mutate(ctx: &mut Context, module: OpRef, journal: &mut ChangeJournal, rng: &mut Lcg) -> bool {
    let block = ctx.module_block(module);
    let ops = block.ops(ctx).to_vec();
    if ops.is_empty() {
        return false;
    }
    let anchor = ops[rng.below(ops.len())];
    let mul = ctx.op_name("cmath", "mul");
    let src = ctx.op_name("t", "src");
    match rng.below(4) {
        // Insert a fresh unregistered source op before a random anchor: no
        // operands, no uses, valid anywhere in the block.
        0 => {
            let ty = ctx.i32_type();
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.insert_before(anchor, OperationState::new(src).add_result_types([ty]));
            true
        }
        // Square a mul's input right before it: the new mul reuses the
        // anchor's own operand, which by induction dominates the anchor.
        1 => {
            if anchor.name(ctx) != mul {
                return false;
            }
            let x = anchor.operand(ctx, 0);
            let ty = anchor.result_types(ctx)[0];
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.insert_before(
                anchor,
                OperationState::new(mul).add_operands([x, x]).add_result_types([ty]),
            );
            true
        }
        // Fold a mul away: forward its input to every user, then erase it.
        // The input is defined before the mul, so it dominates every use of
        // the mul's result.
        2 => {
            if anchor.name(ctx) != mul {
                return false;
            }
            let x = anchor.operand(ctx, 0);
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            rewriter.replace_root(&[x]);
            true
        }
        // Append a fresh source op, then move it before a random anchor:
        // exercises the move path (order-key refresh, displaced-neighbour
        // journaling) with an op that has no operands and no uses.
        _ => {
            let ty = ctx.i32_type();
            let mut rewriter = Rewriter::new(ctx, anchor, journal);
            let fresh = rewriter.append(block, OperationState::new(src).add_result_types([ty]));
            rewriter.move_before(fresh, anchor);
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// Random valid mutation sequences: at every step the incremental verdict
/// must match a from-scratch full-module walk (both `Ok` here, since every
/// mutation preserves validity — a disagreement means the dirty set missed
/// something or the incremental checks are too strict).
#[test]
fn random_valid_mutations_agree_with_full_oracle() {
    let workloads: Vec<(Context, OpRef)> =
        vec![chain_workload(16), conorm_workload()];
    for (w, (ctx0, module)) in workloads.into_iter().enumerate() {
        for seed in 0..6u64 {
            let mut ctx = ctx0.clone();
            let mut rng = Lcg(0x9E3779B97F4A7C15 ^ (seed << 8) ^ w as u64);
            let mut incremental = IncrementalVerifier::new();
            incremental
                .verify_full(&ctx, module)
                .expect("workload starts valid");
            let mut journal = ChangeJournal::new();
            for step in 0..30 {
                journal.clear();
                mutate(&mut ctx, module, &mut journal, &mut rng);
                let incr = incremental.verify_changes(&ctx, &journal);
                let full = ModuleVerifier::new().verify(&ctx, module);
                assert!(
                    incr.is_ok() && full.is_ok(),
                    "workload {w} seed {seed} step {step}: incremental {:?} vs full {:?}\n{}",
                    incr.as_ref().map_err(|e| e[0].to_string()),
                    full.as_ref().map_err(|e| e[0].to_string()),
                    op_to_string(&ctx, module),
                );
            }
        }
    }
}

/// A seeded dominance-breaking mutation: inserting a use of a value
/// *before* its definition must be caught by the incremental verifier
/// (the created op is in the dirty set) exactly as the full oracle does.
#[test]
fn dominance_break_is_caught_by_both_verifiers() {
    let (mut ctx, module) = chain_workload(8);
    let mut incremental = IncrementalVerifier::new();
    incremental.verify_full(&ctx, module).expect("chain starts valid");

    let block = ctx.module_block(module);
    // Pick a mid-block mul and insert a use of its own result before it.
    let def = block.ops(&ctx)[4];
    let bad_result = def.result(&ctx, 0);
    let ty = def.result_types(&ctx)[0];
    let use_name = ctx.op_name("t", "use");
    let mut journal = ChangeJournal::new();
    let mut rewriter = Rewriter::new(&mut ctx, def, &mut journal);
    rewriter.insert_before(
        def,
        OperationState::new(use_name).add_operands([bad_result]).add_result_types([ty]),
    );

    let incr = incremental.verify_changes(&ctx, &journal).unwrap_err();
    let full = ModuleVerifier::new().verify(&ctx, module).unwrap_err();
    assert!(
        incr.iter().any(|d| d.message().contains("dominates")),
        "incremental must report the dominance break, got: {}",
        incr[0]
    );
    assert!(
        full.iter().any(|d| d.message().contains("dominates")),
        "full oracle must report the dominance break, got: {}",
        full[0]
    );
}

/// Erasing the offending op afterwards must bring both verdicts back to
/// `Ok` — the journal's erasure scrubbing may not leave a dangling dirty
/// entry behind.
#[test]
fn erasing_the_offender_restores_agreement() {
    let (mut ctx, module) = chain_workload(8);
    let mut incremental = IncrementalVerifier::new();
    incremental.verify_full(&ctx, module).expect("chain starts valid");

    let block = ctx.module_block(module);
    let def = block.ops(&ctx)[4];
    let bad_result = def.result(&ctx, 0);
    let ty = def.result_types(&ctx)[0];
    let use_name = ctx.op_name("t", "use");
    let mut journal = ChangeJournal::new();
    let mut rewriter = Rewriter::new(&mut ctx, def, &mut journal);
    let bad = rewriter.insert_before(
        def,
        OperationState::new(use_name).add_operands([bad_result]).add_result_types([ty]),
    );
    assert!(incremental.verify_changes(&ctx, &journal).is_err());

    journal.clear();
    let mut rewriter = Rewriter::new(&mut ctx, def, &mut journal);
    rewriter.erase(bad);
    let incr = incremental.verify_changes(&ctx, &journal);
    let full = ModuleVerifier::new().verify(&ctx, module);
    assert!(incr.is_ok(), "incremental: {}", incr.unwrap_err()[0]);
    assert!(full.is_ok(), "full: {}", full.unwrap_err()[0]);
}

/// Driver-level equivalence: the same pattern set driven at
/// `CheckLevel::Full` and `CheckLevel::Incremental` must apply the same
/// rewrites and produce byte-identical output.
#[test]
fn checked_driver_levels_agree_end_to_end() {
    struct MulToSqr {
        mul: irdl_repro::ir::OpName,
        sqr: irdl_repro::ir::OpName,
    }

    impl RewritePattern for MulToSqr {
        fn root(&self) -> Option<irdl_repro::ir::OpName> {
            Some(self.mul)
        }
        fn name(&self) -> &str {
            "mul-to-sqr"
        }
        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>) -> bool {
            let op = rewriter.root();
            let ctx = rewriter.ctx();
            if op.num_operands(ctx) != 2 || op.operand(ctx, 0) != op.operand(ctx, 1) {
                return false;
            }
            let x = op.operand(ctx, 0);
            let ty = op.result_types(ctx)[0];
            let sqr = rewriter.insert_before_root(
                OperationState::new(self.sqr).add_operands([x]).add_result_types([ty]),
            );
            let replacement = sqr.result(rewriter.ctx(), 0);
            rewriter.replace_root(&[replacement]);
            true
        }
    }

    let (mut ctx, module) = chain_workload(24);
    let mut patterns = PatternSet::new();
    let mul = ctx.op_name("cmath", "mul");
    let sqr = ctx.op_name("t", "sqr");
    patterns.add(std::sync::Arc::new(MulToSqr { mul, sqr }));

    let mut outputs = Vec::new();
    for check in [CheckLevel::Full, CheckLevel::Incremental] {
        let mut ctx = ctx.clone();
        let stats = rewrite_greedily_with(&mut ctx, module, &patterns, check)
            .expect("the chain stays valid under rewriting");
        assert_eq!(stats.rewrites, 24, "one rewrite per chain op at {check:?}");
        outputs.push(op_to_string(&ctx, module));
    }
    assert_eq!(outputs[0], outputs[1], "Full and Incremental must produce identical IR");
}
