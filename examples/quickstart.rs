//! Quickstart: define an IR dialect in IRDL, register it at runtime, and
//! immediately parse, verify, optimize, and print IR that uses it.
//!
//! This walks through the paper's §3 flow: no Rust code is generated or
//! compiled to add the dialect — the specification below is all there is.
//!
//! Run with: `cargo run --example quickstart`

use irdl_repro::ir::parse::parse_module;
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::Context;

const SPEC: &str = r#"
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>

  Type complex {
    Parameters (elementType: !FloatType)
    Summary "A complex number"
  }

  Operation mul {
    ConstraintVar (!T: !complex<!FloatType>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Format "$lhs, $rhs : $T.elementType"
    Summary "Multiply two complex numbers"
  }

  Operation norm {
    ConstraintVar (!T: !FloatType)
    Operands (c: !complex<!T>)
    Results (res: !T)
    Format "$c : $T"
    Summary "Compute the norm of a complex number"
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One context, one IRDL file, and the dialect is live.
    let mut ctx = Context::new();
    irdl_repro::irdl::register_dialects(&mut ctx, SPEC)?;
    println!("registered dialects: cmath");

    // 2. Parse IR that uses the dialect's *custom* syntax. The result type
    //    of `cmath.mul` (`!cmath.complex<f32>`) is inferred from `: f32`
    //    through the constraint variable `T`.
    let source = r#"
        %p = "test.source"() : () -> !cmath.complex<f32>
        %q = "test.source"() : () -> !cmath.complex<f32>
        %m = cmath.mul %p, %q : f32
        %n = cmath.norm %m : f32
    "#;
    let module = parse_module(&mut ctx, source)?;
    verify_op(&ctx, module).map_err(|errs| errs[0].clone())?;
    println!("\nparsed and verified:\n{}", op_to_string(&ctx, module));

    // 3. The synthesized verifier rejects ill-typed IR: mixing element
    //    types violates the `ConstraintVar` equality.
    let bad = r#"
        %p = "test.source"() : () -> !cmath.complex<f32>
        %q = "test.source"() : () -> !cmath.complex<f64>
        %m = "cmath.mul"(%p, %q) : (!cmath.complex<f32>, !cmath.complex<f64>) -> !cmath.complex<f32>
    "#;
    let bad_module = parse_module(&mut ctx, bad)?;
    let errs = verify_op(&ctx, bad_module).expect_err("must not verify");
    println!("\nill-typed IR rejected, as expected:\n  {}", errs[0]);

    // 4. Types built programmatically run the same synthesized verifier.
    let i32 = ctx.i32_type();
    let bad_param = ctx.type_attr(i32);
    let err = ctx
        .parametric_type("cmath", "complex", [bad_param])
        .expect_err("i32 is not a float");
    println!("\n!cmath.complex<i32> rejected, as expected:\n  {err}");
    Ok(())
}
