//! Dynamic dialect registration: load an IRDL file at runtime.
//!
//! The paper's headline workflow (§3): "compiler developers can simply
//! register a new dialect by providing an IRDL specification file instead
//! of writing, compiling, and linking several complex C++ files". This
//! example takes an IRDL file and an IR file from the command line (with
//! built-in defaults), registers the dialects, and verifies the IR.
//!
//! Run with:
//!   cargo run --example dynamic_dialect
//!   cargo run --example dynamic_dialect -- my_dialect.irdl my_program.ir

use irdl_repro::ir::parse::parse_module;
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::Context;

/// A matrix dialect nobody compiled into this binary.
const DEFAULT_SPEC: &str = r#"
Dialect matrix {
  Summary "Dense matrices with static dimensions"

  Type mat {
    Parameters (rows: And<int64_t, Not<0 : int64_t>>,
                cols: And<int64_t, Not<0 : int64_t>>,
                element: !AnyOf<!f32, !f64>)
    Summary "A rows x cols matrix"
  }

  Operation matmul {
    Operands (lhs: !mat, rhs: !mat)
    Results (res: !mat)
    NativeVerifier "matrix_dims_compose"
    Summary "Matrix multiplication"
  }

  Operation transpose {
    Operands (m: !mat)
    Results (res: !mat)
    Summary "Matrix transposition"
  }
}
"#;

const DEFAULT_IR: &str = r#"
    %a = "test.source"() : () -> !matrix.mat<2 : i64, 3 : i64, f32>
    %b = "test.source"() : () -> !matrix.mat<3 : i64, 4 : i64, f32>
    %c = "matrix.matmul"(%a, %b) : (!matrix.mat<2 : i64, 3 : i64, f32>, !matrix.mat<3 : i64, 4 : i64, f32>) -> !matrix.mat<2 : i64, 4 : i64, f32>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = match args.first() {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_SPEC.to_string(),
    };
    let ir = match args.get(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_IR.to_string(),
    };

    let mut ctx = Context::new();

    // IRDL-Rust: `matmul` checks inner dimensions natively (the op-level
    // CppConstraint of paper §5.1).
    let mut natives = irdl_repro::irdl::NativeRegistry::with_std();
    natives.register_op_verifier(
        "matrix_dims_compose",
        std::sync::Arc::new(|ctx: &Context, op: irdl_repro::ir::OpRef| {
            let dims = |ty: irdl_repro::ir::Type| -> Option<(i128, i128)> {
                let params = ty.params(ctx);
                Some((params.first()?.as_int(ctx)?, params.get(1)?.as_int(ctx)?))
            };
            let (m, k1) = dims(op.operand(ctx, 0).ty(ctx)).unwrap_or((0, 0));
            let (k2, n) = dims(op.operand(ctx, 1).ty(ctx)).unwrap_or((0, 0));
            let (rm, rn) = dims(op.result_types(ctx)[0]).unwrap_or((0, 0));
            if k1 != k2 {
                return Err(irdl_repro::ir::Diagnostic::new(format!(
                    "inner dimensions do not compose: {k1} vs {k2}"
                )));
            }
            if (rm, rn) != (m, n) {
                return Err(irdl_repro::ir::Diagnostic::new(format!(
                    "result must be {m}x{n}, got {rm}x{rn}"
                )));
            }
            Ok(())
        }),
    );

    let names = irdl_repro::irdl::register_dialects_with(&mut ctx, &spec, &natives)
        .map_err(|d| d.render(&spec))?;
    println!("registered dialect(s): {}", names.join(", "));

    let module = parse_module(&mut ctx, &ir).map_err(|d| d.render(&ir))?;
    match verify_op(&ctx, module) {
        Ok(()) => println!("\nIR verifies:\n{}", op_to_string(&ctx, module)),
        Err(errs) => {
            println!("\nIR does not verify:");
            for err in errs {
                println!("  {err}");
            }
        }
    }

    // Show the native verifier rejecting a bad matmul.
    let bad = r#"
        %a = "test.source"() : () -> !matrix.mat<2 : i64, 3 : i64, f32>
        %b = "test.source"() : () -> !matrix.mat<4 : i64, 5 : i64, f32>
        %c = "matrix.matmul"(%a, %b) : (!matrix.mat<2 : i64, 3 : i64, f32>, !matrix.mat<4 : i64, 5 : i64, f32>) -> !matrix.mat<2 : i64, 5 : i64, f32>
    "#;
    let bad_module = parse_module(&mut ctx, bad)?;
    let errs = verify_op(&ctx, bad_module).expect_err("inner dims do not compose");
    println!("\nmismatched matmul rejected, as expected:\n  {}", errs[0]);
    Ok(())
}
