//! IRDL definitions as IR: the `irdl` meta-dialect.
//!
//! The upstream MLIR implementation of this paper's ideas represents
//! dialect definitions as operations of an `irdl` dialect, so definitions
//! flow through the same parser, printer, and verifier as any program.
//! This example lowers the paper's `cmath` dialect to meta-IR, prints it,
//! verifies it, and raises it back into a working dialect.
//!
//! Run with: `cargo run --example meta_ir`

use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::Context;
use irdl_repro::irdl::meta::{from_meta_ir, register_meta_dialect, to_meta_ir};

const CMATH: &str = r#"
Dialect cmath {
  Type complex {
    Parameters (elementType: !AnyOf<!f32, !f64>)
  }
  Operation mul {
    ConstraintVar (!T: !complex<!AnyOf<!f32, !f64>>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = Context::new();
    register_meta_dialect(&mut ctx)?;

    // Lower the textual definition into irdl.* operations. Note how the
    // constraint variable T becomes a *shared SSA value*: used by lhs, rhs,
    // and res — SSA sharing is the "same value at each use" semantics.
    let file = irdl_repro::irdl::parse_irdl(CMATH)?;
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let meta_op = to_meta_ir(&mut ctx, &file.dialects[0], block)?;
    verify_op(&ctx, module).map_err(|e| e[0].clone())?;
    println!("cmath as meta-IR (verified):\n{}\n", op_to_string(&ctx, module));

    // Raise it back and compile on a fresh context: the dialect behaves
    // exactly as if it had been compiled from the text.
    let raised = from_meta_ir(&mut ctx, meta_op)?;
    let mut fresh = Context::new();
    irdl_repro::irdl::compile_dialect(
        &mut fresh,
        &raised,
        &irdl_repro::irdl::NativeRegistry::new(),
    )?;
    let f32 = fresh.f32_type();
    let good = fresh.type_attr(f32);
    println!(
        "raised dialect registered; !cmath.complex<f32> builds: {}",
        fresh.parametric_type("cmath", "complex", [good]).is_ok()
    );
    let i32 = fresh.i32_type();
    let bad = fresh.type_attr(i32);
    println!(
        "!cmath.complex<i32> rejected: {}",
        fresh.parametric_type("cmath", "complex", [bad]).is_err()
    );
    println!(
        "\ncanonical text of the raised dialect:\n{}",
        irdl_repro::irdl::printer::print_dialect(&raised)
    );
    Ok(())
}
