//! Reproduce the paper's evaluation (§6) from the compiled corpus.
//!
//! Registers all 28 MLIR dialects (expressed in IRDL) on one context and
//! renders the requested tables/figures — the same computation as the
//! `irdl-stats` binary, exposed as an example of the introspection API.
//!
//! Run with: `cargo run --example dialect_stats -- table1 fig4 fig11`
//! (defaults to `fig4 fig11 fig12` when no argument is given).

use irdl_repro::analysis::{figures, CorpusStats};
use irdl_repro::ir::Context;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = Context::new();
    let names = irdl_repro::dialects::register_corpus(&mut ctx)?;
    println!(
        "compiled {} dialects, {} operations, {} interned types\n",
        names.len(),
        ctx.registry()
            .dialects()
            .filter(|d| {
                d.name
                    .map(|s| names.contains(&ctx.symbol_str(s).to_string()))
                    .unwrap_or(false)
            })
            .map(|d| d.num_ops())
            .sum::<usize>(),
        ctx.num_types(),
    );
    let stats = CorpusStats::collect(&ctx, &names);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["fig4", "fig11", "fig12"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for figure in wanted {
        let text = match figure {
            "table1" => figures::table1(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(&stats),
            "fig5a" => figures::fig5a(&stats),
            "fig5b" => figures::fig5b(&stats),
            "fig6a" => figures::fig6a(&stats),
            "fig6b" => figures::fig6b(&stats),
            "fig7a" => figures::fig7a(&stats),
            "fig7b" => figures::fig7b(&stats),
            "fig8" => figures::fig8(&stats),
            "fig9" => figures::fig9(&stats),
            "fig10" => figures::fig10(&stats),
            "fig11" => figures::fig11(&stats),
            "fig12" => figures::fig12(&stats),
            "all" => figures::render_all(&stats),
            other => {
                eprintln!("unknown figure `{other}`");
                std::process::exit(2);
            }
        };
        println!("{text}");
    }
    Ok(())
}
