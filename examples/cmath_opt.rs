//! The paper's Listing 1: optimizing `conorm`.
//!
//! `|p| * |q|` is rewritten into `|p * q|` — one complex multiplication and
//! one norm instead of two norms and a float multiplication. Both the
//! dialects *and* the rewrite pattern are loaded from text at runtime.
//!
//! Run with: `cargo run --example cmath_opt`

use irdl_repro::dialects::showcase::{
    build_conorm_module, register_showcase, CONORM_PATTERN,
};
use irdl_repro::ir::print::op_to_string;
use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::Context;
use irdl_repro::rewrite::{parse_patterns, rewrite_greedily};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = Context::new();
    register_showcase(&mut ctx)?;

    // Listing 1a: the unoptimized conorm function.
    let module = build_conorm_module(&mut ctx)?;
    verify_op(&ctx, module).map_err(|errs| errs[0].clone())?;
    println!("before optimization:\n{}\n", op_to_string(&ctx, module));

    // The declarative pattern: norm(p) * norm(q)  =>  norm(p * q).
    let patterns = parse_patterns(&mut ctx, CONORM_PATTERN)?;
    let stats = rewrite_greedily(&mut ctx, module, &patterns);
    println!(
        "applied {} rewrite(s) over {} visited op(s)\n",
        stats.rewrites, stats.visited
    );

    // Listing 1b: the optimized function, still verifying.
    verify_op(&ctx, module).map_err(|errs| errs[0].clone())?;
    println!("after optimization:\n{}", op_to_string(&ctx, module));
    Ok(())
}
