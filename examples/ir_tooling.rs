//! IR-design tooling over introspectable definitions (the paper's
//! Figure 1: "IR Language Server ... More IR Tools").
//!
//! Every dialect registered from IRDL is plain data, so editor-style
//! queries — completion, signature help, canonical formatting — need no
//! per-dialect code. This example runs them against the showcase dialects
//! and one of the corpus specifications.
//!
//! Run with: `cargo run --example ir_tooling`

use irdl_repro::ir::Context;
use irdl_repro::tools::completion::{complete, signature_help, type_signature_help};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = Context::new();
    irdl_repro::dialects::showcase::register_showcase(&mut ctx)?;

    // --- completion, as a language server would answer it ---------------
    println!("complete `cm`:");
    for item in complete(&ctx, "cm") {
        println!("  {:?}  {}  — {}", item.kind, item.name, item.summary);
    }
    println!("\ncomplete `cmath.`:");
    for item in complete(&ctx, "cmath.") {
        println!("  {:?}  {}", item.kind, item.name);
    }

    // --- signature help ---------------------------------------------------
    println!("\nsignature help for `cmath.mul`:");
    print!("{}", signature_help(&ctx, "cmath.mul").expect("registered"));
    println!("\nsignature help for `!cmath.complex`:");
    print!("{}", type_signature_help(&ctx, "!cmath.complex").expect("registered"));

    // --- canonical formatting ------------------------------------------------
    let messy = "Dialect demo{Operation op{Operands(a: !AnyOf<!f32,!f64>) Results(r: !f32)}}";
    let ast = irdl_repro::irdl::parse_irdl(messy)?;
    println!("\ncanonical formatting of a one-line spec:");
    print!("{}", irdl_repro::irdl::printer::print_source(&ast));

    // --- the same queries work on the 28-dialect corpus ---------------------
    let mut corpus_ctx = Context::new();
    irdl_repro::dialects::register_corpus(&mut corpus_ctx)?;
    let items = complete(&corpus_ctx, "scf.");
    println!("\nthe corpus answers too — complete `scf.` ({} items):", items.len());
    for item in items.iter().take(5) {
        println!("  {}", item.name);
    }
    Ok(())
}
