//! IRDL-Rust: the paper's Listing 10 and 11 — native constraints, native
//! op verifiers, and native (`TypeOrAttrParam`) parameters.
//!
//! Where the paper embeds C++ (`CppConstraint "$_self <= 32"`), this
//! reproduction registers *named* Rust closures and references them from
//! the specification, preserving what is measured in §6: which definitions
//! need an escape hatch to a general-purpose language.
//!
//! Run with: `cargo run --example custom_constraints`

use std::sync::Arc;

use irdl_repro::ir::verify::verify_op;
use irdl_repro::ir::{Context, OperationState, Signedness};
use irdl_repro::irdl::NativeRegistry;

const SPEC: &str = r#"
Dialect vec {
  Constraint BoundedInteger : uint32_t {
    Summary "integer value between 0 and 32"
    NativeConstraint "bounded_u32"
  }

  TypeOrAttrParam DebugLabel {
    Summary "An opaque host-side label"
    NativeType "string_param"
  }

  Type vector {
    Parameters (typ: !AnyType, size: BoundedInteger)
    Summary "A fixed-size vector with a bounded length"
  }

  Attribute annotated {
    Parameters (label: DebugLabel)
    Summary "A host-provided debug label"
  }

  Operation append_vector {
    ConstraintVars (T: !AnyType)
    Operands (lhs: !vector<T, BoundedInteger>, rhs: !vector<T, BoundedInteger>)
    Results (res: !vector<T, BoundedInteger>)
    NativeVerifier "append_vector_sizes"
    Summary "Concatenate two vectors of known length"
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = Context::new();
    let mut natives = NativeRegistry::with_std(); // provides `bounded_u32`

    // The op-level invariant of Listing 10: lhs.size + rhs.size == res.size.
    natives.register_op_verifier(
        "append_vector_sizes",
        Arc::new(|ctx: &Context, op: irdl_repro::ir::OpRef| {
            let size = |ty: irdl_repro::ir::Type| {
                ty.params(ctx).get(1).and_then(|a| a.as_int(ctx)).unwrap_or(0)
            };
            let lhs = size(op.operand(ctx, 0).ty(ctx));
            let rhs = size(op.operand(ctx, 1).ty(ctx));
            let res = size(op.result_types(ctx)[0]);
            if lhs + rhs == res {
                Ok(())
            } else {
                Err(irdl_repro::ir::Diagnostic::new(format!(
                    "appending {lhs}-element and {rhs}-element vectors cannot \
                     produce {res} elements"
                )))
            }
        }),
    );

    irdl_repro::irdl::register_dialects_with(&mut ctx, SPEC, &natives)
        .map_err(|d| d.render(SPEC))?;
    println!("registered dialect: vec\n");

    // Build !vec.vector<f32, N> types; the *native constraint* bounds N.
    let f32 = ctx.f32_type();
    let f32a = ctx.type_attr(f32);
    let ui32 = ctx.int_type_with_signedness(32, Signedness::Unsigned);
    let n64 = ctx.int_attr(64, ui32);
    let err = ctx.parametric_type("vec", "vector", [f32a, n64]).expect_err("64 > 32");
    println!("!vec.vector<f32, 64> rejected by `bounded_u32`:\n  {err}\n");

    let n2 = ctx.int_attr(2, ui32);
    let n3 = ctx.int_attr(3, ui32);
    let n5 = ctx.int_attr(5, ui32);
    let n6 = ctx.int_attr(6, ui32);
    let v2 = ctx.parametric_type("vec", "vector", [f32a, n2])?;
    let v3 = ctx.parametric_type("vec", "vector", [f32a, n3])?;
    let v5 = ctx.parametric_type("vec", "vector", [f32a, n5])?;
    let v6 = ctx.parametric_type("vec", "vector", [f32a, n6])?;

    // The native parameter kind (Listing 11): values are validated and
    // printed by the registered Rust hook.
    let label = ctx.native_attr("string_param", "tensor %12 of layer 3")?;
    let annotated = ctx.parametric_attr("vec", "annotated", [label])?;
    println!("native-parameter attribute: {}\n", annotated.display(&ctx));

    // Exercise the native op verifier.
    let module = ctx.create_module();
    let block = ctx.module_block(module);
    let src = ctx.op_name("test", "source");
    let a = ctx.create_op(OperationState::new(src).add_result_types([v2]));
    let b = ctx.create_op(OperationState::new(src).add_result_types([v3]));
    ctx.append_op(block, a);
    ctx.append_op(block, b);
    let va = a.result(&ctx, 0);
    let vb = b.result(&ctx, 0);
    let append = ctx.op_name("vec", "append_vector");
    let good = ctx.create_op(
        OperationState::new(append).add_operands([va, vb]).add_result_types([v5]),
    );
    ctx.append_op(block, good);
    verify_op(&ctx, module).map_err(|errs| errs[0].clone())?;
    println!("append_vector(2, 3) -> 5 verifies");

    ctx.erase_op(good);
    let bad = ctx.create_op(
        OperationState::new(append).add_operands([va, vb]).add_result_types([v6]),
    );
    ctx.append_op(block, bad);
    let errs = verify_op(&ctx, module).expect_err("2 + 3 != 6");
    println!("append_vector(2, 3) -> 6 rejected:\n  {}", errs[0]);
    Ok(())
}
